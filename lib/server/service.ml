(* Acceptor + worker-pool serving loop.

   The calling domain is the ACCEPTOR: it owns the listen socket and
   every idle connection, selects for readiness, and hands each
   parse-ready connection — together with a pre-drawn trace id — to a
   pool of WORKER domains over a bounded job queue.  A worker owns the
   connection end-to-end for one request (parse, dispatch, write), then
   returns it through an unbounded completion queue and wakes the
   acceptor via a self-pipe.  Ownership is strict: a connection is
   touched by exactly one domain at any moment, so the HTTP conn buffer
   needs no lock.

   Every iteration of the acceptor:

     1. select() over the listen socket, the wake pipe and every idle
        connection;
     2. drain the completion queue — closed connections die, kept ones
        with buffered pipelined bytes are re-handed immediately, the
        rest rejoin the idle set;
     3. accept everything waiting, 503-ing the overflow past
        [max_pending] (idle + in flight);
     4. hand off readable idle connections — one request per handoff,
        so a pipelining client cannot starve the rest — and reap those
        idle past [idle_timeout_s].

   Backpressure is the job queue's bound: when [try_push] refuses, the
   acceptor answers 503 and closes instead of queueing without bound.
   The loop re-checks the stop flag each tick, so SIGINT/SIGTERM latency
   is bounded by [idle_poll_s] plus the requests in flight. *)

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  max_pending : int;
  max_head : int;
  max_body : int;
  read_timeout_s : float;
  idle_timeout_s : float;
  idle_poll_s : float;
  drain_grace_s : float;
  log : string -> unit;
  trace_seed : int option;
  sampler_step_s : float;
  slo_rules : Obs.Alerts.rule list;
  retention : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = 0;
    queue_depth = 0;
    max_pending = 64;
    max_head = Http.default_limits.Http.max_head;
    max_body = Http.default_limits.Http.max_body;
    read_timeout_s = 5.0;
    idle_timeout_s = 30.0;
    idle_poll_s = 0.25;
    drain_grace_s = 2.0;
    log = (fun s -> print_string s; flush stdout);
    trace_seed = None;
    sampler_step_s = 1.0;
    slo_rules = [];
    retention = 600;
  }

(* Per-request trace ids: one SplitMix64 stream, rendered as 16 hex
   chars.  With [trace_seed] set the n-th handoff of every run gets the
   same id (reproducible tests and CI gates); otherwise the stream is
   seeded from wall clock ⊕ pid at [run] time.  A plain ref is still
   correct with N workers because ids are only drawn by the single
   acceptor domain, BEFORE handoff — the id travels with the job and the
   worker installs it as its domain-local trace context. *)
let trace_state = ref 0L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let seed_traces = function
  | Some seed -> trace_state := mix64 (Int64.of_int seed)
  | None ->
      trace_state :=
        mix64
          (Int64.logxor
             (Int64.of_float (Unix.gettimeofday () *. 1e6))
             (Int64.of_int (Unix.getpid ())))

let next_trace_id () =
  trace_state := Int64.add !trace_state 0x9e3779b97f4a7c15L;
  Printf.sprintf "%016Lx" (mix64 !trace_state)

let m_requests = Obs.Metrics.counter "server.requests"
let m_accepted = Obs.Metrics.counter "server.conns.accepted"
let m_busy = Obs.Metrics.counter "server.rejected.busy"
let m_2xx = Obs.Metrics.counter "server.resp.2xx"
let m_4xx = Obs.Metrics.counter "server.resp.4xx"
let m_5xx = Obs.Metrics.counter "server.resp.5xx"
let g_pending = Obs.Metrics.gauge "server.pending"
let g_workers = Obs.Metrics.gauge "server.workers"

(* Sub-millisecond buckets matter here: cached hits answer in tens of
   microseconds, and with 1.0 as the lowest bound nearly every request
   landed in one bucket, flattening the interpolated p50/p95 into
   noise. *)
let h_request_ms =
  Obs.Metrics.histogram "server.request.ms"
    ~buckets:[| 0.05; 0.25; 0.5; 1.0; 5.0; 25.0; 100.0; 500.0; 2000.0; 10000.0 |]

let count_status status =
  Obs.Metrics.incr
    (if status >= 500 then m_5xx else if status >= 400 then m_4xx else m_2xx)

let stop_flag = Atomic.make false
let stop () = Atomic.set stop_flag true

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> stop ()) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

type client = { fd : Unix.file_descr; conn : Http.conn; mutable last_active : float }

(* Per-worker observability: [server.worker.<i>.requests] counts the
   requests worker [i] parsed successfully (the same increment point as
   [server.requests], so the per-worker counters sum to the total) and
   [server.worker.<i>.busy_ms] gauges its cumulative time spent on
   jobs.  [busy_ms] itself is worker-private state. *)
type worker_slot = {
  w_requests : Obs.Metrics.counter;
  w_busy : Obs.Metrics.gauge;
  mutable busy_ms : float;
}

let worker_slot i =
  {
    w_requests = Obs.Metrics.counter (Printf.sprintf "server.worker.%d.requests" i);
    w_busy = Obs.Metrics.gauge (Printf.sprintf "server.worker.%d.busy_ms" i);
    busy_ms = 0.0;
  }

(* A job is one connection, one request, one pre-drawn trace id.  [Stop]
   is the shutdown sentinel: pushed once per worker, FIFO behind any
   remaining jobs, so queued work is served before a worker parks. *)
type job =
  | Job of { c : client; trace : string; force_close : bool }
  | Stop

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

let send_response fd ~close resp =
  count_status resp.Http.status;
  let bytes = Http.to_string ~close resp in
  match write_all fd bytes 0 (String.length bytes) with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

let close_client c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let meth_string = function Http.GET -> "GET" | Http.POST -> "POST" | Http.Other s -> s

(* One access-log line per request ({!Obs.Log} is a no-op unless the
   serve CLI enabled it with [--log]).  Emitted inside the request's
   trace context, so the line carries the same id as the [X-Trace-Id]
   header and the request's spans. *)
let access_log ~meth ~path ~status ~bytes ~dur_ms ~cache =
  Obs.Log.info "http.access"
    [
      ("method", Obs.Json.String meth);
      ("path", Obs.Json.String path);
      ("status", Obs.Json.Number (float_of_int status));
      ("bytes", Obs.Json.Number (float_of_int bytes));
      ("dur_ms", Obs.Json.Number dur_ms);
      ( "cache",
        Obs.Json.String
          (match cache with Some `Hit -> "hit" | Some `Miss -> "miss" | None -> "-") );
    ]

(* Serve one request off a ready connection, on a worker domain.  The
   whole exchange — parse included — runs under the handed-off trace id,
   so even 4xx parse failures log with an id.  [force_close] is the
   drain path: whatever happens, the peer is told the connection is
   done. *)
let serve_one ~routes ~limits ~force_close ~trace ~slot c =
  Obs.Span.with_trace trace @@ fun () ->
  match Http.parse_request ~limits c.conn with
  | Error Http.Eof -> `Close
  | Error e ->
      let resp = Http.error_response e in
      access_log ~meth:"-" ~path:"-" ~status:resp.Http.status
        ~bytes:(String.length resp.Http.body) ~dur_ms:0.0 ~cache:None;
      ignore (send_response c.fd ~close:true resp);
      `Close
  | Ok req -> (
      Obs.Metrics.incr m_requests;
      Obs.Metrics.incr slot.w_requests;
      Obs.Span.with_ ~name:"server.request" @@ fun () ->
      let t0 = Obs.Span.now () in
      match Router.dispatch ~routes req with
      | Router.Response resp ->
          let dur_ms = Int64.to_float (Int64.sub (Obs.Span.now ()) t0) /. 1e6 in
          Obs.Metrics.observe h_request_ms dur_ms;
          (* Echo the id so a slow response can be chased into the trace
             ([--profile]) and the access log without any server-side
             lookup. *)
          let resp =
            {
              resp with
              Http.extra_headers = ("X-Trace-Id", trace) :: resp.Http.extra_headers;
            }
          in
          access_log ~meth:(meth_string req.Http.meth) ~path:(Http.path req)
            ~status:resp.Http.status ~bytes:(String.length resp.Http.body) ~dur_ms
            ~cache:(Api.take_cache_outcome ());
          let close = force_close || Http.wants_close req in
          c.last_active <- Unix.gettimeofday ();
          if send_response c.fd ~close resp && not close then `Keep else `Close
      | Router.Stream s ->
          (* The status goes on the wire before the producer runs, so
             it is counted now; a producer failure can only truncate
             the stream (no terminal chunk, connection closed) — the
             peer detects it as a framing error, never a fresh head. *)
          count_status s.Router.s_status;
          let close = force_close || Http.wants_close req in
          let bytes = ref 0 in
          let ok = ref true in
          let write str =
            match write_all c.fd str 0 (String.length str) with
            | () -> ()
            | exception Unix.Unix_error (_, _, _) ->
                ok := false;
                raise_notrace Exit
          in
          (try
             Http.respond_stream ~content_type:s.Router.s_content_type
               ~headers:(("X-Trace-Id", trace) :: s.Router.s_headers)
               ~status:s.Router.s_status ~close ~write
               (fun emit ->
                 s.Router.s_body (fun payload ->
                     bytes := !bytes + String.length payload;
                     emit payload))
           with
          | Exit -> ()
          | _exn -> ok := false);
          let dur_ms = Int64.to_float (Int64.sub (Obs.Span.now ()) t0) /. 1e6 in
          Obs.Metrics.observe h_request_ms dur_ms;
          access_log ~meth:(meth_string req.Http.meth) ~path:(Http.path req)
            ~status:s.Router.s_status ~bytes:!bytes ~dur_ms
            ~cache:(Api.take_cache_outcome ());
          c.last_active <- Unix.gettimeofday ();
          if !ok && not close then `Keep else `Close)

(* Wake the acceptor out of select() after pushing to the completion
   queue.  The pipe is non-blocking on both ends: a full pipe already
   guarantees a pending wakeup, so EAGAIN is success. *)
let wake fd =
  match Unix.write_substring fd "w" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let drain_wake fd =
  let buf = Bytes.create 512 in
  let rec go () =
    match Unix.read fd buf 0 512 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let worker_loop ~routes ~limits ~slot ~work ~done_q ~wake_w () =
  let rec loop () =
    match Chan.pop work with
    | Stop -> ()
    | Job { c; trace; force_close } ->
        let t0 = Obs.Span.now () in
        let verdict = serve_one ~routes ~limits ~force_close ~trace ~slot c in
        slot.busy_ms <-
          slot.busy_ms +. (Int64.to_float (Int64.sub (Obs.Span.now ()) t0) /. 1e6);
        Obs.Metrics.set slot.w_busy slot.busy_ms;
        Chan.push done_q (c, verdict);
        wake wake_w;
        loop ()
  in
  loop ()

(* The self-monitoring sampler: its own domain ticking
   [Monitor.sample_now] every [step_s].  Sleeps in ≤50 ms slices so a
   SIGTERM parks it within one slice, not one step — a 30 s step must
   not add 30 s to shutdown. *)
let sampler_loop ~step_s () =
  let rec nap remaining =
    if remaining > 0.0 && not (Atomic.get stop_flag) then begin
      let slice = Float.min 0.05 remaining in
      (try Unix.sleepf slice with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      nap (remaining -. slice)
    end
  in
  let rec loop () =
    if not (Atomic.get stop_flag) then begin
      Monitor.sample_now ();
      nap step_s;
      loop ()
    end
  in
  loop ()

let busy_response =
  Http.response ~status:503 (Http.error_body "server busy: pending queue full")

let select_readable fds timeout =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let run ?on_ready cfg =
  Atomic.set stop_flag false;
  seed_traces cfg.trace_seed;
  (* Fresh ring + alert engine per server run: stale samples from a
     previous run in this process (tests, bench) must not leak into
     /varz windows. *)
  ignore
    (Monitor.configure ~step_s:cfg.sampler_step_s ~retention:cfg.retention
       ~rules:cfg.slo_rules ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let limits = { Http.max_head = cfg.max_head; Http.max_body = cfg.max_body } in
  let routes = Handlers.routes () in
  let nworkers = if cfg.workers > 0 then cfg.workers else Exec.default_jobs () in
  let depth = if cfg.queue_depth > 0 then cfg.queue_depth else cfg.max_pending in
  let work : job Chan.t = Chan.create ~capacity:depth () in
  let done_q : (client * [ `Keep | `Close ]) Chan.t = Chan.create () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let slots = Array.init nworkers worker_slot in
  Obs.Metrics.set g_workers (float_of_int nworkers);
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let close_quietly fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  Fun.protect
    ~finally:(fun () ->
      close_quietly lsock;
      close_quietly wake_r;
      close_quietly wake_w)
    (fun () ->
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen lsock 64;
      Unix.set_nonblock lsock;
      let port =
        match Unix.getsockname lsock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      let domains =
        Array.map
          (fun slot -> Domain.spawn (worker_loop ~routes ~limits ~slot ~work ~done_q ~wake_w))
          slots
      in
      let sampler =
        if cfg.sampler_step_s > 0.0 then
          Some (Domain.spawn (sampler_loop ~step_s:cfg.sampler_step_s))
        else None
      in
      let joined = ref false in
      let join_workers () =
        if not !joined then begin
          joined := true;
          for _ = 1 to nworkers do
            Chan.push work Stop
          done;
          Array.iter Domain.join domains;
          (* The sampler parks on the stop flag alone; raise it here so
             an exceptional unwind (flag still false) cannot hang the
             join. *)
          Atomic.set stop_flag true;
          Option.iter Domain.join sampler
        end
      in
      Fun.protect ~finally:join_workers @@ fun () ->
      Option.iter (fun f -> f ~port) on_ready;
      cfg.log
        (Printf.sprintf "solarstorm serve: listening on http://%s:%d (%d workers)\n"
           cfg.host port nworkers);
      (* Acceptor state: [idle] connections are owned here; a handoff
         transfers ownership to a worker until the connection comes back
         through [done_q].  [in_flight] is only ever touched by this
         domain (incremented at handoff, decremented at collection), so
         a plain ref suffices. *)
      let idle = ref [] in
      let in_flight = ref 0 in
      let handoff ~force_close c =
        let trace = next_trace_id () in
        if Chan.try_push work (Job { c; trace; force_close }) then incr in_flight
        else begin
          (* Queue full: shed load now rather than buffering a backlog
             the workers are provably behind on. *)
          Obs.Metrics.incr m_busy;
          ignore (send_response c.fd ~close:true busy_response);
          close_client c
        end
      in
      let collect ~draining () =
        let rec go () =
          match Chan.try_pop done_q with
          | None -> ()
          | Some (c, verdict) ->
              decr in_flight;
              (match verdict with
              | `Close -> close_client c
              | `Keep ->
                  if draining then close_client c
                  else if Http.buffered c.conn then
                    (* Pipelined bytes already parsed off the socket:
                       re-hand immediately, no select needed. *)
                    handoff ~force_close:false c
                  else begin
                    c.last_active <- Unix.gettimeofday ();
                    idle := !idle @ [ c ]
                  end);
              go ()
        in
        go ()
      in
      let rec accept_burst () =
        match Unix.accept ~cloexec:true lsock with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ()
        | fd, _addr ->
            (* Nagle + the peer's delayed ACK can park a small pipelined
               response for ~40 ms; responses are written in one buffered
               burst, so there is nothing for Nagle to coalesce anyway.
               Unix-domain sockets reject the option — ignore that. *)
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error (_, _, _) -> ());
            if List.length !idle + !in_flight >= cfg.max_pending then begin
              Obs.Metrics.incr m_busy;
              ignore (send_response fd ~close:true busy_response);
              close_quietly fd;
              accept_burst ()
            end
            else begin
              Obs.Metrics.incr m_accepted;
              let c =
                {
                  fd;
                  conn = Http.conn_of_fd ~timeout_s:cfg.read_timeout_s fd;
                  last_active = Unix.gettimeofday ();
                }
              in
              idle := !idle @ [ c ];
              accept_burst ()
            end
      in
      while not (Atomic.get stop_flag) do
        Obs.Metrics.set g_pending (float_of_int (List.length !idle + !in_flight));
        let ready_fds =
          select_readable
            (lsock :: wake_r :: List.map (fun c -> c.fd) !idle)
            cfg.idle_poll_s
        in
        if List.mem wake_r ready_fds then drain_wake wake_r;
        collect ~draining:false ();
        if List.mem lsock ready_fds then accept_burst ();
        let now = Unix.gettimeofday () in
        idle :=
          List.filter
            (fun c ->
              if List.mem c.fd ready_fds then begin
                handoff ~force_close:false c;
                false
              end
              else if now -. c.last_active > cfg.idle_timeout_s then begin
                close_client c;
                false
              end
              else true)
            !idle
      done;
      cfg.log "solarstorm serve: draining\n";
      (* Serve what is in flight or already readable — every response
         now announces [Connection: close] — until everything is
         answered or the grace budget runs out.  Jobs still queued at
         the deadline are not abandoned: the Stop sentinels queue
         behind them, so workers finish them before parking. *)
      let deadline = Unix.gettimeofday () +. cfg.drain_grace_s in
      let rec drain_loop () =
        collect ~draining:true ();
        let now = Unix.gettimeofday () in
        if now < deadline && (!in_flight > 0 || !idle <> []) then begin
          let ready_fds =
            select_readable
              (wake_r :: List.map (fun c -> c.fd) !idle)
              (Float.min 0.05 (deadline -. now))
          in
          if List.mem wake_r ready_fds then drain_wake wake_r;
          collect ~draining:true ();
          idle :=
            List.filter
              (fun c ->
                if Http.buffered c.conn || List.mem c.fd ready_fds then begin
                  handoff ~force_close:true c;
                  false
                end
                else true)
              !idle;
          drain_loop ()
        end
      in
      drain_loop ();
      join_workers ();
      (* Workers are parked; anything they completed after the last
         collect is still in the queue, and unready idle connections
         just close. *)
      collect ~draining:true ();
      List.iter close_client !idle;
      idle := [];
      cfg.log "solarstorm serve: stopped\n")
