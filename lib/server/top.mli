(** [solarstorm top]: a live terminal view of a running server, polling
    [/statusz] + [/varz] and repainting a frame per poll.  The
    screen-clear ANSI prefix is gated through {!Obs.Progress.tty_sink},
    so redirected output is plain readable frames. *)

val fetch : host:string -> port:int -> string -> (string, string) result
(** One-shot [GET path] with [Connection: close]; [Ok body] on a 200. *)

val spark : ?width:int -> float list -> string
(** Unicode block-element sparkline, min–max scaled; at most [width]
    (default 32) newest values. *)

val render : target:string -> statusz:Obs.Json.t -> varz:Obs.Json.t -> string
(** One frame from parsed [/statusz] and [/varz] documents.  Pure —
    missing fields render as ["-"], never raise. *)

val run :
  ?out:(string -> unit) ->
  host:string ->
  port:int ->
  window:string ->
  interval_s:float ->
  count:int option ->
  unit ->
  (unit, string) result
(** Poll/render every [interval_s] seconds, [count] times ([None] =
    until killed).  [Error] carries the first fetch/parse failure. *)
