(** A small string-keyed LRU map for the service's result cache.

    O(1) find/add via a hash table over an intrusive doubly-linked
    recency list.  Not thread-safe — the service mutates it from its
    single worker loop only. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] 0 disables caching (every [add] is dropped).
    @raise Invalid_argument if negative. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most recently used entry. *)

val add : 'a t -> string -> 'a -> (string * 'a) option
(** Insert (or refresh) a binding as most recently used, evicting the
    least recently used entry when over capacity; the evicted binding is
    returned so callers can count it. *)

val clear : 'a t -> unit

val keys_newest_first : 'a t -> string list
(** Recency order, for tests. *)
