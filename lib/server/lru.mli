(** A small string-keyed LRU map for the service's result cache.

    O(1) find/add via a hash table over an intrusive doubly-linked
    recency list.  The plain [t] is {e not} thread-safe — use it from
    one domain, or reach for {!Sharded}, the lock-striped wrapper the
    multi-worker service stores response bodies in. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] 0 disables caching (every [add] is dropped).
    @raise Invalid_argument if negative. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most recently used entry. *)

val add : 'a t -> string -> 'a -> (string * 'a) option
(** Insert (or refresh) a binding as most recently used, evicting the
    least recently used entry when over capacity; the evicted binding is
    returned so callers can count it. *)

val clear : 'a t -> unit

val keys_newest_first : 'a t -> string list
(** Recency order, for tests. *)

(** Lock-striped sharded LRU, safe for concurrent use from any number
    of domains.

    Keys are distributed over [shards] independent (mutex, {!t}) pairs
    by [Hashtbl.hash], so domains touching different stripes never
    contend and the critical section is one O(1) stripe operation.
    Per-shard capacities sum {e exactly} to the requested total (the
    first [capacity mod shards] stripes hold one extra entry), so the
    global entry bound is as hard as the unsharded cache's.  Recency —
    and therefore eviction — is per stripe: an insert only ever evicts
    within its own stripe, which approximates global LRU when keys
    spread evenly. *)
module Sharded : sig
  type 'a t

  val default_shards : int
  (** 8 — enough stripes that a handful of worker domains rarely
      collide, few enough that tiny caches are not all remainder. *)

  val create : ?shards:int -> capacity:int -> unit -> 'a t
  (** The shard count is clamped to [max 1 capacity] so no stripe is
      capacity-0 while others hold entries ([capacity 0] disables
      caching, as in {!Lru.create}).
      @raise Invalid_argument if [capacity < 0] or [shards <= 0]. *)

  val capacity : 'a t -> int
  (** The requested total capacity. *)

  val shard_count : 'a t -> int
  (** The clamped number of stripes actually in use. *)

  val find : 'a t -> string -> 'a option
  val add : 'a t -> string -> 'a -> (string * 'a) option
  val length : 'a t -> int
  val clear : 'a t -> unit

  val keys_newest_first : 'a t -> string list
  (** Per-stripe recency order, concatenated in stripe order — there is
      no global recency ordering across stripes.  For tests. *)
end
