(* Loopback load generator: N keep-alive connections, each pushing a
   window of pipelined requests at the server and timing every response.

   Per connection the driver keeps up to [pipeline] requests in flight:
   send timestamps queue up FIFO, responses are read strictly in order
   (HTTP/1.1 pipelining), and a request's latency is the gap between
   writing its bytes and finishing the read of its response.  Each
   connection runs on its own domain, matching the repo's Domain-based
   concurrency idiom; the last connection runs inline so the common
   [connections = 1] case (the bench kernel) spawns nothing.

   Results aggregate into exact quantiles over the individual request
   latencies — unlike the server's histogram this samples every request,
   so it is the ground truth the bucket-interpolated estimates are
   judged against. *)

type target = { host : string; port : int; path : string }

let parse_url url =
  let fail () =
    Error (Printf.sprintf "cannot parse %S (expected http://HOST:PORT[/PATH])" url)
  in
  match
    if String.length url >= 7 && String.sub url 0 7 = "http://" then
      Some (String.sub url 7 (String.length url - 7))
    else None
  with
  | None -> fail ()
  | Some rest ->
      let hostport, path =
        match String.index_opt rest '/' with
        | None -> (rest, "/")
        | Some i ->
            (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      in
      (match String.index_opt hostport ':' with
      | None -> fail ()
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port_s = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt port_s with
          | Some port when port > 0 && port < 65536 && host <> "" ->
              Ok { host; port; path }
          | _ -> fail ()))

type result = {
  requests : int;  (* completed OK and measured (warmup excluded) *)
  warmup : int;  (* completed OK but excluded as per-connection warmup *)
  errors : int;
  elapsed_s : float;
  latencies_ns : float array;  (* sorted ascending, one per measured request *)
  ttfb_ns : float array;  (* sorted; send-to-first-body-bytes, same requests *)
  bytes : int;  (* response body bytes received, measured requests only *)
  chunks : int;  (* chunked-transfer chunks received, measured requests only *)
}

let req_per_s r = if r.elapsed_s > 0.0 then float_of_int r.requests /. r.elapsed_s else 0.0

(* Exact quantile over sorted samples (nearest-rank with interpolation,
   the "linear" convention). *)
let quantile_exact sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Loadgen.quantile_exact: no samples";
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Loadgen.quantile_exact: q outside [0, 1]";
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Int.min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  sorted.(lo) +. ((sorted.(hi) -. sorted.(lo)) *. frac)

let request_bytes ~target ~body =
  match body with
  | None ->
      Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\n\r\n" target.path target.host
        target.port
  | Some b ->
      Printf.sprintf
        "POST %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Length: %d\r\nContent-Type: application/json\r\n\r\n%s"
        target.path target.host target.port (String.length b) b

(* Minimal in-order response reader over one connection.  Returns the
   body length; raises [Failure] on protocol surprises and
   [End_of_file] when the peer closes mid-response. *)
let rec index_of_terminator buf from =
  if from + 3 >= Buffer.length buf then None
  else if
    Buffer.nth buf from = '\r'
    && Buffer.nth buf (from + 1) = '\n'
    && Buffer.nth buf (from + 2) = '\r'
    && Buffer.nth buf (from + 3) = '\n'
  then Some from
  else index_of_terminator buf (from + 1)

type rconn = { fd : Unix.file_descr; pending : Buffer.t; chunk : Bytes.t }

let fill rc =
  let n = Unix.read rc.fd rc.chunk 0 (Bytes.length rc.chunk) in
  if n = 0 then raise End_of_file;
  Buffer.add_subbytes rc.pending rc.chunk 0 n

(* Returns (status, body length, chunk count, first-body timestamp).
   Chunk count is 0 for fixed-length responses; the timestamp is taken
   when the first chunk of a chunked response has been decoded (= the
   first streamed row for /sweep), or at body completion for fixed
   responses, where head and body arrive as one burst anyway. *)
let read_response rc =
  let rec head_end () =
    match index_of_terminator rc.pending 0 with
    | Some i -> i
    | None ->
        fill rc;
        head_end ()
  in
  let he = head_end () in
  let head = Buffer.sub rc.pending 0 he in
  let status =
    (* "HTTP/1.1 200 OK" *)
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some s -> s
        | None -> failwith ("bad status line: " ^ head))
    | _ -> failwith ("bad status line: " ^ head)
  in
  let header_value name =
    String.split_on_char '\n' head
    |> List.find_map (fun line ->
           match String.index_opt line ':' with
           | Some i when String.lowercase_ascii (String.trim (String.sub line 0 i)) = name
             ->
               Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
           | _ -> None)
  in
  let consume upto =
    let rest = Buffer.sub rc.pending upto (Buffer.length rc.pending - upto) in
    Buffer.clear rc.pending;
    Buffer.add_string rc.pending rest
  in
  let chunked =
    match header_value "transfer-encoding" with
    | Some v -> String.lowercase_ascii v = "chunked"
    | None -> false
  in
  if chunked then begin
    let pos = ref (he + 4) in
    let nchunks = ref 0 and body_len = ref 0 and t_first = ref 0L in
    let rec crlf_from i =
      if i + 1 >= Buffer.length rc.pending then begin
        fill rc;
        crlf_from i
      end
      else if Buffer.nth rc.pending i = '\r' && Buffer.nth rc.pending (i + 1) = '\n'
      then i
      else crlf_from (i + 1)
    in
    let hex s =
      let s = String.trim s in
      match int_of_string_opt ("0x" ^ s) with
      | Some n when n >= 0 && not (String.contains s '_') -> n
      | _ -> failwith ("bad chunk size: " ^ s)
    in
    let rec chunks () =
      let le = crlf_from !pos in
      let size_line = Buffer.sub rc.pending !pos (le - !pos) in
      let size_str =
        match String.index_opt size_line ';' with
        | Some i -> String.sub size_line 0 i
        | None -> size_line
      in
      let size = hex size_str in
      pos := le + 2;
      while Buffer.length rc.pending < !pos + size + 2 do
        fill rc
      done;
      pos := !pos + size + 2;
      if size > 0 then begin
        if !nchunks = 0 then t_first := Obs.Span.now ();
        incr nchunks;
        body_len := !body_len + size;
        chunks ()
      end
    in
    chunks ();
    consume !pos;
    if !t_first = 0L then t_first := Obs.Span.now ();
    (status, !body_len, !nchunks, !t_first)
  end
  else begin
    let len =
      match header_value "content-length" with
      | Some v -> (
          match int_of_string_opt v with
          | Some l -> l
          | None -> failwith ("bad content-length: " ^ v))
      | None -> failwith "no content-length"
    in
    let total = he + 4 + len in
    while Buffer.length rc.pending < total do
      fill rc
    done;
    consume total;
    (status, len, 0, Obs.Span.now ())
  end

(* One connection's share of the run.  Latencies are reported in send
   order; an error (connect failure, protocol surprise, non-2xx) stops
   this connection and forfeits its remaining requests.  The first
   [warmup] completions are driven and validated like any other but kept
   out of latencies/bytes — connection setup, first-touch allocation and
   cold caches land there, not in the quantiles. *)
(* One connection's tally, merged across connections by [run]. *)
type part = {
  p_latencies : float list;
  p_ttfbs : float list;
  p_measured : int;
  p_warm : int;
  p_errors : int;
  p_bytes : int;
  p_chunks : int;
}

let drive_connection ~target ~pipeline ~request ~warmup ~n =
  let latencies = ref [] and ttfbs = ref [] in
  let completed = ref 0 and errors = ref 0 and bytes = ref 0 and chunks = ref 0 in
  (try
     let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
       (fun () ->
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string target.host, target.port));
         (* Pipelined requests are small writes issued while earlier
            responses are still in flight — exactly the pattern Nagle
            holds back until the peer's (delayed, ~40 ms) ACK. *)
         (try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error (_, _, _) -> ());
         let rc = { fd; pending = Buffer.create 8192; chunk = Bytes.create 8192 } in
         let sent = ref 0 and sent_at = Queue.create () in
         let send_one () =
           let rec write off len =
             if len > 0 then begin
               match Unix.write_substring fd request off len with
               | n -> write (off + n) (len - n)
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off len
             end
           in
           Queue.push (Obs.Span.now ()) sent_at;
           write 0 (String.length request);
           incr sent
         in
         let receive_one () =
           let status, len, nchunks, t_first = read_response rc in
           let t0 = Queue.pop sent_at in
           if status >= 200 && status < 300 then begin
             incr completed;
             if !completed > warmup then begin
               latencies :=
                 Int64.to_float (Int64.sub (Obs.Span.now ()) t0) :: !latencies;
               ttfbs := Int64.to_float (Int64.sub t_first t0) :: !ttfbs;
               bytes := !bytes + len;
               chunks := !chunks + nchunks
             end
           end
           else failwith (Printf.sprintf "HTTP %d" status)
         in
         while !completed + !errors < n do
           while !sent < n && !sent - !completed < pipeline do
             send_one ()
           done;
           receive_one ()
         done)
   with _ -> errors := n - !completed);
  {
    p_latencies = !latencies;
    p_ttfbs = !ttfbs;
    p_measured = Int.max 0 (!completed - warmup);
    p_warm = Int.min warmup !completed;
    p_errors = !errors;
    p_bytes = !bytes;
    p_chunks = !chunks;
  }

let run ?(connections = 1) ?(pipeline = 1) ?(warmup = 0) ~requests ~body target =
  if connections <= 0 then invalid_arg "Loadgen.run: connections <= 0";
  if pipeline <= 0 then invalid_arg "Loadgen.run: pipeline <= 0";
  if requests <= 0 then invalid_arg "Loadgen.run: requests <= 0";
  if warmup < 0 then invalid_arg "Loadgen.run: warmup < 0";
  let connections = Int.min connections requests in
  let request = request_bytes ~target ~body in
  (* Split the measured requests as evenly as possible; the first
     [requests mod connections] connections take one extra.  Warmup is
     per connection, on top of its share. *)
  let share i = (requests / connections) + if i < requests mod connections then 1 else 0 in
  let t_start = Obs.Span.now () in
  let worker i () = drive_connection ~target ~pipeline ~request ~warmup ~n:(share i + warmup) in
  let handles =
    List.init (connections - 1) (fun i -> Domain.spawn (worker i))
  in
  let last = worker (connections - 1) () in
  let parts = List.map Domain.join handles @ [ last ] in
  let elapsed_s = Int64.to_float (Int64.sub (Obs.Span.now ()) t_start) /. 1e9 in
  let sorted_of select =
    let a = List.concat_map select parts |> Array.of_list in
    Array.sort compare a;
    a
  in
  let sum select = List.fold_left (fun a p -> a + select p) 0 parts in
  {
    requests = sum (fun p -> p.p_measured);
    warmup = sum (fun p -> p.p_warm);
    errors = sum (fun p -> p.p_errors);
    elapsed_s;
    latencies_ns = sorted_of (fun p -> p.p_latencies);
    ttfb_ns = sorted_of (fun p -> p.p_ttfbs);
    bytes = sum (fun p -> p.p_bytes);
    chunks = sum (fun p -> p.p_chunks);
  }

(* Report as a solarstorm-bench/1 document so the existing bench tooling
   (and check.sh's schema gate) consumes loadgen output unchanged:
   latency quantiles are kernels (ns_per_run = that quantile), counts
   and rates are metrics. *)
let to_bench_json r =
  let open Obs.Json in
  let kernel name est v =
    Object
      [ ("name", String name); ("ns_per_run", Number v); ("estimator", String est) ]
  in
  let q p = quantile_exact r.latencies_ns p in
  let mean =
    Array.fold_left ( +. ) 0.0 r.latencies_ns
    /. float_of_int (Int.max 1 (Array.length r.latencies_ns))
  in
  let qt p = quantile_exact r.ttfb_ns p in
  let kernels =
    if Array.length r.latencies_ns = 0 then []
    else
      [
        kernel "loadgen.latency-mean" "mean" mean;
        kernel "loadgen.latency-p50" "exact-quantile" (q 0.5);
        kernel "loadgen.latency-p95" "exact-quantile" (q 0.95);
        kernel "loadgen.latency-p99" "exact-quantile" (q 0.99);
        (* First-row latency: time to the first body bytes.  For a
           chunked /sweep this is the first streamed row — the
           incremental-delivery figure; for fixed responses it tracks
           total latency (head and body arrive together). *)
        kernel "loadgen.ttfb-p50" "exact-quantile" (qt 0.5);
        kernel "loadgen.ttfb-p95" "exact-quantile" (qt 0.95);
        (* Throughput as a kernel (inverse rate: wall ns per completed
           request), so req/s trajectories ride the same baseline/gate
           tooling as every other kernel instead of needing
           post-processing of the metrics block. *)
        kernel "loadgen.ns-per-request" "wall-per-request"
          (r.elapsed_s *. 1e9 /. float_of_int (Int.max 1 r.requests));
      ]
  in
  to_string
    (Object
       [
         ("schema", String "solarstorm-bench/1");
         ("mode", String "loadgen");
         ("kernels", Array kernels);
         ( "metrics",
           Object
             [
               ("loadgen.requests", Number (float_of_int r.requests));
               ("loadgen.warmup", Number (float_of_int r.warmup));
               ("loadgen.errors", Number (float_of_int r.errors));
               ("loadgen.bytes", Number (float_of_int r.bytes));
               ("loadgen.chunks", Number (float_of_int r.chunks));
               ("loadgen.elapsed_s", Number r.elapsed_s);
               ("loadgen.req_per_s", Number (req_per_s r));
             ] );
       ])
  ^ "\n"

let summary r =
  if Array.length r.latencies_ns = 0 then
    Printf.sprintf "loadgen: %d/%d requests failed, nothing to report\n" r.errors
      (r.requests + r.errors)
  else
    let ms p = quantile_exact r.latencies_ns p /. 1e6 in
    Printf.sprintf
      "loadgen: %d requests in %.2fs (%.0f req/s), p50 %.2fms p95 %.2fms p99 %.2fms%s\n"
      r.requests r.elapsed_s (req_per_s r) (ms 0.5) (ms 0.95) (ms 0.99)
      ((if r.chunks > 0 then
          Printf.sprintf ", ttfb p50 %.2fms, %d chunks"
            (quantile_exact r.ttfb_ns 0.5 /. 1e6)
            r.chunks
        else "")
      ^ (if r.warmup > 0 then Printf.sprintf ", %d warmup excluded" r.warmup else "")
      ^ if r.errors > 0 then Printf.sprintf ", %d errors" r.errors else "")
