(** A small multi-producer multi-consumer FIFO channel for moving work
    between the service's acceptor and its worker domains.

    Two flavours share one type: bounded ([capacity > 0]) for the
    acceptor → worker job queue, where {!try_push} refusing is the
    backpressure signal (the acceptor answers 503 instead of queueing
    without bound), and unbounded ([capacity = 0]) for the worker →
    acceptor completion queue, where {!push} must never block a worker.

    FIFO order is total across producers; {!pop} blocks until an
    element is available (workers park here between requests and are
    woken by the [Stop] sentinel at shutdown). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the queue; [0] (default) means unbounded.
    @raise Invalid_argument if negative. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue, or return [false] when a bounded channel is full.  Never
    blocks (beyond the internal lock). *)

val push : 'a t -> 'a -> unit
(** Enqueue unconditionally, ignoring any bound — for unbounded
    channels and for shutdown sentinels that must not be droppable. *)

val pop : 'a t -> 'a
(** Block until an element is available and dequeue it. *)

val try_pop : 'a t -> 'a option
(** Dequeue if an element is available, never blocking. *)

val length : 'a t -> int
