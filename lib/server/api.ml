(* Parameter decoding, canonical keys, compute + encode.  See the
   interface; the invariants that matter here:

   - keys must be collision-free (two requests with different results
     must never share a key), so every float that feeds a key prints
     with %.17g and the model key spells out every constructor field —
     [Failure_model.to_string]'s %g would fold distinct probabilities
     together;
   - keys should be canonical (two requests with the same result should
     share a key when cheap to arrange), so the ITU scale is normalized
     out of non-ITU keys;
   - encoders build {!Obs.Json} values and serialize compactly, so the
     CLI's [--json] output and the HTTP body are the same bytes by
     construction. *)

open Obs.Json

(* The network vocabulary and simulate-parameter record are owned by
   the core sweep engine — a sweep cell IS a simulate request — so both
   layers share one type and one canonical-key discipline. *)
type network = Stormsim.Sweep.network_id = Submarine | Intertubes | Itu

let network_to_string = Stormsim.Sweep.network_id_to_string
let network_of_string = Stormsim.Sweep.network_id_of_string

type sim_params = Stormsim.Sweep.cell = {
  network : network;
  model : Stormsim.Failure_model.t;
  spacing_km : float;
  itu_scale : float;
  seed : int;
  trials : int;
}

let sim_defaults = Stormsim.Sweep.default_cell

type scenario_source = Event of string | Speed of float

type scenario_params = {
  source : scenario_source;
  sc_seed : int;
  sc_trials : int;
  physical : bool;
}

let scenario_defaults =
  { source = Event "carrington"; sc_seed = Datasets.default_seed; sc_trials = 10;
    physical = false }

type countries_params = { co_seed : int; co_trials : int }

let countries_defaults = { co_seed = Datasets.default_seed; co_trials = 10 }

(* --- JSON field decoding --- *)

(* Trials are the one knob that multiplies work without bound, so the
   service refuses absurd values instead of grinding on them. *)
let max_trials = Stormsim.Sweep.max_trials

let as_int name = function
  | Number v when Float.is_integer v && Float.abs v <= 1e15 -> Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "field %S must be an integer" name)

let as_float name = function
  | Number v -> Ok v
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let as_string name = function
  | String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let as_bool name = function
  | Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let check_trials t =
  if t < 1 then Error "field \"trials\" must be >= 1"
  else if t > max_trials then
    Error (Printf.sprintf "field \"trials\" must be <= %d" max_trials)
  else Ok t

let fold_object ~name step base = function
  | Object kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          step acc k v)
        (Ok base) kvs
  | _ -> Error (Printf.sprintf "%s request body must be a JSON object" name)

let sim_of_json base j =
  let step p k v =
    match k with
    | "network" ->
        let* s = as_string k v in
        let* network = network_of_string s in
        Ok { p with network }
    | "model" ->
        let* m =
          match v with
          | String s -> Stormsim.Failure_model.of_string s
          | Number prob when prob >= 0.0 && prob <= 1.0 ->
              Ok (Stormsim.Failure_model.uniform prob)
          | _ -> Error "field \"model\" must be a model name or a probability"
        in
        Ok { p with model = m }
    | "spacing_km" ->
        let* s = as_float k v in
        if Float.is_finite s && s > 0.0 then Ok { p with spacing_km = s }
        else Error "field \"spacing_km\" must be > 0"
    | "itu_scale" ->
        let* s = as_float k v in
        if Float.is_finite s && s > 0.0 && s <= 1.0 then Ok { p with itu_scale = s }
        else Error "field \"itu_scale\" must be in (0, 1]"
    | "seed" ->
        let* seed = as_int k v in
        Ok { p with seed }
    | "trials" ->
        let* t = as_int k v in
        let* trials = check_trials t in
        Ok { p with trials }
    | k -> Error (Printf.sprintf "unknown field %S" k)
  in
  fold_object ~name:"simulate" step base j

let scenario_of_json base j =
  let step p k v =
    match k with
    | "event" ->
        let* e = as_string k v in
        Ok { p with source = Event (String.lowercase_ascii (String.trim e)) }
    | "speed_km_s" ->
        let* s = as_float k v in
        if Float.is_finite s && s > 0.0 then Ok { p with source = Speed s }
        else Error "field \"speed_km_s\" must be > 0"
    | "seed" ->
        let* sc_seed = as_int k v in
        Ok { p with sc_seed }
    | "trials" ->
        let* t = as_int k v in
        let* sc_trials = check_trials t in
        Ok { p with sc_trials }
    | "physical" ->
        let* physical = as_bool k v in
        Ok { p with physical }
    | k -> Error (Printf.sprintf "unknown field %S" k)
  in
  fold_object ~name:"scenario" step base j

let countries_of_json base j =
  let step p k v =
    match k with
    | "seed" ->
        let* co_seed = as_int k v in
        Ok { p with co_seed }
    | "trials" ->
        let* t = as_int k v in
        let* co_trials = check_trials t in
        Ok { p with co_trials }
    | k -> Error (Printf.sprintf "unknown field %S" k)
  in
  fold_object ~name:"countries" step base j

(* A sweep grid: a JSON object mapping axis keys to either one value
   (pinning the parameter) or an array of values (one grid dimension).
   Field order is axis order — it decides the cartesian nesting, so it
   is preserved, not sorted. *)
let sweep_axes_of_json j =
  let raw name = function
    | Number v -> Ok (Stormsim.Sweep.Num v)
    | String s -> Ok (Stormsim.Sweep.Str s)
    | _ -> Error (Printf.sprintf "axis %S: values must be numbers or strings" name)
  in
  match j with
  | Object kvs ->
      let* axes =
        List.fold_left
          (fun acc (k, v) ->
            let* axes = acc in
            let* raws =
              match v with
              | Array vs ->
                  List.fold_left
                    (fun acc v ->
                      let* acc = acc in
                      let* r = raw k v in
                      Ok (r :: acc))
                    (Ok []) vs
                  |> Result.map List.rev
              | (Number _ | String _) as v ->
                  let* r = raw k v in
                  Ok [ r ]
              | _ ->
                  Error
                    (Printf.sprintf "axis %S must be a value or an array of values" k)
            in
            let* axis = Stormsim.Sweep.axis_of_raw k raws in
            Ok (axis :: axes))
          (Ok []) kvs
      in
      Ok (List.rev axes)
  | _ -> Error "sweep request body must be a JSON object"

let params_of_body ~base ~of_json body =
  if String.trim body = "" then Ok base
  else
    match Obs.Json.parse body with
    | Error e -> Error ("invalid JSON body: " ^ e)
    | Ok j -> of_json base j

(* --- canonical keys (the float/normalization discipline lives in
   {!Stormsim.Sweep}, shared with the sweep engine's plan dedup) --- *)

let sim_key p =
  Printf.sprintf "simulate|%s|trials=%d" (Stormsim.Sweep.plan_key p) p.trials

let scenario_key p =
  let source =
    match p.source with
    | Event e -> "event=" ^ e
    | Speed v -> Printf.sprintf "speed=%.17g" v
  in
  Printf.sprintf "scenario|%s|seed=%d|trials=%d|physical=%b" source p.sc_seed
    p.sc_trials p.physical

let countries_key p =
  Printf.sprintf "countries|seed=%d|trials=%d" p.co_seed p.co_trials

(* --- process-wide caches --- *)

let hits = Obs.Metrics.counter "server.cache.hits"
let misses = Obs.Metrics.counter "server.cache.misses"
let evictions = Obs.Metrics.counter "server.cache.evictions"
let entries_gauge = Obs.Metrics.gauge "server.cache.entries"
let plan_reuses = Obs.Metrics.counter "server.plan.reuses"

(* The result cache is lock-striped ({!Lru.Sharded}) because N worker
   domains consult it concurrently; the ref swap in [set_cache_capacity]
   happens before the service boots its workers. *)
let result_cache = ref (Lru.Sharded.create ~capacity:128 ())

let sync_entries () =
  Obs.Metrics.set entries_gauge (float_of_int (Lru.Sharded.length !result_cache))

let set_cache_capacity ?shards n =
  result_cache := Lru.Sharded.create ?shards ~capacity:n ();
  sync_entries ()

let cache_length () = Lru.Sharded.length !result_cache

let cache_capacity () = Lru.Sharded.capacity !result_cache

let cache_shards () = Lru.Sharded.shard_count !result_cache

(* The outcome of the most recent [with_cache] call, for the service's
   access log.  Domain-local: each worker domain serves one request at
   a time, so its own cell is single-writer, and workers never see each
   other's outcomes. *)
let outcome_key : [ `Hit | `Miss ] option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_cache_outcome () =
  let cell = Domain.DLS.get outcome_key in
  let o = !cell in
  cell := None;
  o

(* Compiled-plan memo.  The mutex is held across [Plan.compile]
   (single-flight): compiles take orders of magnitude longer than the
   table probe, and letting two workers race the same key would burn a
   core per duplicate compile for no byte of benefit. *)
let plans : (string, Stormsim.Plan.t) Hashtbl.t = Hashtbl.create 16
let plans_mu = Mutex.create ()

let reset () =
  Lru.Sharded.clear !result_cache;
  sync_entries ();
  Domain.DLS.get outcome_key := None;
  Mutex.lock plans_mu;
  Hashtbl.reset plans;
  Mutex.unlock plans_mu

let plan_for ~plan_key ~network ~model ~spacing_km =
  Mutex.lock plans_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock plans_mu) @@ fun () ->
  match Hashtbl.find_opt plans plan_key with
  | Some plan ->
      Obs.Metrics.incr plan_reuses;
      plan
  | None ->
      let plan = Stormsim.Plan.compile ~spacing_km ~network ~model () in
      Hashtbl.replace plans plan_key plan;
      plan

let with_cache ~key compute =
  let outcome = Domain.DLS.get outcome_key in
  match Lru.Sharded.find !result_cache key with
  | Some body ->
      Obs.Metrics.incr hits;
      outcome := Some `Hit;
      Ok body
  | None -> (
      Obs.Metrics.incr misses;
      outcome := Some `Miss;
      match compute () with
      | Error _ as e -> e
      | Ok body ->
          (match Lru.Sharded.add !result_cache key body with
          | Some _ -> Obs.Metrics.incr evictions
          | None -> ());
          sync_entries ();
          Ok body)

(* --- compute + encode --- *)

let doc fields = Obs.Json.to_string (Object fields) ^ "\n"

let mean_std mean std = Object [ ("mean", Number mean); ("std", Number std) ]

let build_network p =
  match p.network with
  | Submarine -> Datasets.Cache.submarine ~seed:p.seed ()
  | Intertubes -> Datasets.Cache.intertubes ~seed:p.seed ()
  | Itu -> Datasets.Cache.itu ~seed:p.seed ~scale:p.itu_scale ()

let simulate_body p =
  let network = build_network p in
  let plan =
    plan_for ~plan_key:(Stormsim.Sweep.plan_key p) ~network ~model:p.model
      ~spacing_km:p.spacing_km
  in
  let s = Stormsim.Montecarlo.run_plan ~trials:p.trials ~seed:p.seed plan in
  doc
    ([
       ("endpoint", String "simulate");
       ("network", String (network_to_string p.network));
       ("model", String (Stormsim.Failure_model.to_string p.model));
       ("spacing_km", Number p.spacing_km);
     ]
    @ (match p.network with
      | Itu -> [ ("itu_scale", Number p.itu_scale) ]
      | _ -> [])
    @ [
        ("seed", Number (float_of_int p.seed));
        ("trials", Number (float_of_int p.trials));
        ( "cables_failed_pct",
          mean_std s.Stormsim.Montecarlo.cables_mean s.Stormsim.Montecarlo.cables_std );
        ( "nodes_unreachable_pct",
          mean_std s.Stormsim.Montecarlo.nodes_mean s.Stormsim.Montecarlo.nodes_std );
      ])

let scenario_body p =
  let cme =
    match p.source with
    | Speed v -> Ok (Spaceweather.Cme.make ~speed_km_s:v ())
    | Event name -> (
        match Spaceweather.Storm_catalog.find name with
        | Some e -> Ok e.Spaceweather.Storm_catalog.cme
        | None -> Error (Printf.sprintf "unknown event %S" name))
  in
  let* cme = cme in
  let networks =
    [
      ("submarine", Datasets.Cache.submarine ~seed:p.sc_seed ());
      ("intertubes", Datasets.Cache.intertubes ~seed:p.sc_seed ());
    ]
  in
  let s =
    Stormsim.Scenario.run ~trials:p.sc_trials ~use_physical:p.physical ~cme ~networks ()
  in
  let impact (i : Stormsim.Scenario.impact) =
    Object
      [
        ("network", String i.Stormsim.Scenario.network);
        ("model", String (Stormsim.Failure_model.to_string i.Stormsim.Scenario.model));
        ("cables_failed_pct", Number i.Stormsim.Scenario.cables_failed_pct);
        ("nodes_unreachable_pct", Number i.Stormsim.Scenario.nodes_unreachable_pct);
      ]
  in
  let tl = s.Stormsim.Scenario.timeline in
  Ok
    (doc
       ([ ("endpoint", String "scenario") ]
       @ (match p.source with
         | Event e -> [ ("event", String e) ]
         | Speed v -> [ ("speed_km_s", Number v) ])
       @ [
           ("cme_speed_km_s", Number s.Stormsim.Scenario.cme.Spaceweather.Cme.speed_km_s);
           ("dst_nt", Number s.Stormsim.Scenario.dst_nt);
           ( "severity",
             String (Spaceweather.Dst.severity_to_string s.Stormsim.Scenario.severity) );
           ( "timeline",
             Object
               [
                 ( "detection_delay_h",
                   Number tl.Spaceweather.Forecast.detection_delay_h );
                 ("transit_h", Number tl.Spaceweather.Forecast.transit_h);
                 ( "l1_confirmation_h",
                   Number tl.Spaceweather.Forecast.l1_confirmation_h );
                 ( "actionable_lead_h",
                   Number tl.Spaceweather.Forecast.actionable_lead_h );
               ] );
           ("seed", Number (float_of_int p.sc_seed));
           ("trials", Number (float_of_int p.sc_trials));
           ("physical", Bool p.physical);
           ("impacts", Array (List.map impact s.Stormsim.Scenario.impacts));
         ]))

let countries_body p =
  let net = Datasets.Cache.submarine ~seed:p.co_seed () in
  let findings = Stormsim.Country.run_all ~trials:p.co_trials net in
  let finding (f : Stormsim.Country.finding) =
    Object
      [
        ("id", String f.Stormsim.Country.spec.Stormsim.Country.id);
        ("state", String f.Stormsim.Country.spec.Stormsim.Country.state_name);
        ("loss_probability", Number f.Stormsim.Country.loss_probability);
        ("direct_cables", Number (float_of_int f.Stormsim.Country.direct_cables));
        ("expectation", String f.Stormsim.Country.spec.Stormsim.Country.expectation);
      ]
  in
  doc
    [
      ("endpoint", String "countries");
      ("seed", Number (float_of_int p.co_seed));
      ("trials", Number (float_of_int p.co_trials));
      ("findings", Array (List.map finding findings));
    ]
