(** Loopback load generator behind [solarstorm loadgen] and the
    [serve.throughput] bench kernel.

    Hammers a live server with [connections] keep-alive connections
    (one domain each; a single connection runs inline), keeping up to
    [pipeline] requests in flight per connection, and times every
    request individually — send-to-response-complete, reads strictly in
    pipeline order.  Quantiles over the collected latencies are exact
    (every request is a sample), the ground truth against which the
    server's bucket-interpolated [server.request.ms] estimates can be
    judged. *)

type target = { host : string; port : int; path : string }

val parse_url : string -> (target, string) result
(** Accepts [http://HOST:PORT] and [http://HOST:PORT/PATH] only — this
    drives lab servers by address, not the open web. *)

type result = {
  requests : int;  (** completed with a 2xx response and measured *)
  warmup : int;  (** completed with a 2xx response but excluded as warmup *)
  errors : int;  (** forfeited: connect/protocol failures or non-2xx *)
  elapsed_s : float;  (** wall time for the whole run, warmup included *)
  latencies_ns : float array;  (** sorted; one sample per measured request *)
  ttfb_ns : float array;
      (** sorted; send-to-first-body-bytes per measured request.  For a
          chunked response this is the first decoded chunk — the first
          streamed row of a [/sweep]; for fixed-length responses it
          tracks total latency (head and body arrive together). *)
  bytes : int;  (** response body bytes received, measured requests only *)
  chunks : int;
      (** chunked-transfer chunks received, measured requests only (0
          when every response was fixed-length) *)
}

val run :
  ?connections:int ->
  ?pipeline:int ->
  ?warmup:int ->
  requests:int ->
  body:string option ->
  target ->
  result
(** [run ~requests ~body target] spreads [requests] evenly over
    [connections] (default 1, clamped to [requests]).  [body = Some b]
    sends [POST] with [b] (JSON content type); [None] sends [GET].
    Responses may be fixed-length or [Transfer-Encoding: chunked]
    (streaming endpoints like [/sweep]): chunked bodies are decoded
    in-line, counted per chunk, and timed to the first chunk.
    Each connection first drives [warmup] (default 0) extra requests
    whose latencies/bytes are discarded — connection setup and cold
    caches land there, not in the quantiles.  An error on a connection
    forfeits that connection's remaining requests (counted in [errors])
    without aborting the others.
    @raise Invalid_argument on non-positive parameters ([warmup] may be
    0). *)

val req_per_s : result -> float

val quantile_exact : float array -> float -> float
(** Linear-interpolated quantile over sorted samples.
    @raise Invalid_argument on an empty array or [q] outside [0, 1]. *)

val to_bench_json : result -> string
(** The run as a [solarstorm-bench/1] document (mode ["loadgen"]):
    latency mean/p50/p95/p99, first-row latency as
    [loadgen.ttfb-p50]/[loadgen.ttfb-p95], plus throughput as an
    inverse-rate [loadgen.ns-per-request] kernel ([ns_per_run] =
    nanoseconds), and request/error/chunk/elapsed/req-per-s figures
    under ["metrics"] — wall time and achieved rate are recorded in
    both places so throughput trajectories need no post-processing. *)

val summary : result -> string
(** One human-readable line (req/s and millisecond quantiles; TTFB p50
    and chunk count appear when any response streamed). *)
