(* `solarstorm top`: a live terminal view of a running server, built by
   polling /statusz and /varz over plain HTTP and re-rendering a frame
   per poll.  Rendering is pure ([render] maps two parsed JSON documents
   to a string) so tests exercise the layout without a socket; the
   screen-clearing ANSI prefix goes through {!Obs.Progress.tty_sink}, so
   piping `top` into a file records clean frames with no control
   codes — the same gating the progress meter uses. *)

let find_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let jpath doc path =
  List.fold_left (fun acc k -> Option.bind acc (Obs.Json.member k)) (Some doc) path

let jnum doc path = Option.bind (jpath doc path) Obs.Json.number
let jstr doc path = Option.bind (jpath doc path) Obs.Json.string_

(* Minimal one-shot GET: Connection: close, read to EOF, return the
   body on a 200.  Loadgen owns the heavy client machinery; top only
   ever needs this. *)
let fetch ~host ~port path =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> (
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      @@ fun () ->
      match Unix.connect fd ai.Unix.ai_addr with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
      | () -> (
          let req =
            Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path
              host
          in
          let rec send off =
            if off < String.length req then
              send (off + Unix.write_substring fd req off (String.length req - off))
          in
          send 0;
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec recv () =
            match Unix.read fd chunk 0 8192 with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                recv ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
          in
          (match recv () with
          | () -> ()
          | exception Unix.Unix_error (e, _, _) ->
              Buffer.clear buf;
              Buffer.add_string buf (Unix.error_message e));
          let raw = Buffer.contents buf in
          match String.index_opt raw ' ' with
          | None -> Error (Printf.sprintf "GET %s: malformed response" path)
          | Some sp -> (
              let status =
                if String.length raw >= sp + 4 then String.sub raw (sp + 1) 3 else "???"
              in
              match find_substring raw "\r\n\r\n" with
              | None -> Error (Printf.sprintf "GET %s: no header terminator" path)
              | Some i ->
                  let body = String.sub raw (i + 4) (String.length raw - i - 4) in
                  if status = "200" then Ok body
                  else Error (Printf.sprintf "GET %s: HTTP %s" path status))))

let fetch_json ~host ~port path =
  match fetch ~host ~port path with
  | Error e -> Error e
  | Ok body -> (
      match Obs.Json.parse body with
      | Ok doc -> Ok doc
      | Error e -> Error (Printf.sprintf "GET %s: bad JSON: %s" path e))

(* Unicode block-element sparkline, min–max scaled like the dashboard's
   SVG one. *)
let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let spark ?(width = 32) vs =
  let vs = if List.length vs > width then
      (* keep the newest [width] values *)
      List.filteri (fun i _ -> i >= List.length vs - width) vs
    else vs
  in
  match vs with
  | [] -> ""
  | vs ->
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      let span = hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let lvl =
               if span <= 0.0 then 3
               else
                 let x = (v -. lo) /. span *. 7.0 in
                 int_of_float (Float.round x)
             in
             spark_levels.(max 0 (min 7 lvl)))
           vs)

let series_points varz name sub =
  match jpath varz [ "series"; name; sub ] with
  | Some (Obs.Json.Array pts) ->
      List.filter_map
        (fun p ->
          match p with
          | Obs.Json.Array [ _; v ] -> Obs.Json.number v
          | _ -> None)
        pts
  | _ -> []

let fmt_opt fmt = function Some v -> Printf.sprintf fmt v | None -> "-"

let render ~target ~statusz ~varz =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let version = Option.value ~default:"?" (jstr statusz [ "build"; "version" ]) in
  let workers = fmt_opt "%.0f" (jnum statusz [ "build"; "workers" ]) in
  let uptime = fmt_opt "%.0fs" (jnum statusz [ "uptime_s" ]) in
  line "solarstorm top — %s — v%s — %s workers — up %s" target version workers uptime;
  let total = fmt_opt "%.0f" (jnum statusz [ "requests"; "total" ]) in
  let rate = fmt_opt "%.1f/s" (jnum varz [ "series"; "server.requests"; "rate_per_s" ]) in
  line "requests   total %-10s rate %-12s %s" total rate
    (spark (series_points varz "server.requests" "points"));
  let q name = fmt_opt "%.2fms" (jnum varz [ "series"; "server.request.ms"; name ]) in
  line "latency    p50 %-8s p95 %-8s p99 %-8s %s" (q "p50") (q "p95") (q "p99")
    (spark (series_points varz "server.request.ms" "p99_points"));
  let cache k = fmt_opt "%.0f" (jnum statusz [ "cache"; k ]) in
  line "cache      hits %-10s misses %-8s entries %s" (cache "hits") (cache "misses")
    (cache "entries");
  let firing = jnum statusz [ "alerts"; "firing" ] in
  let nrules = fmt_opt "%.0f" (jnum statusz [ "alerts"; "rules" ]) in
  line "alerts     %s firing of %s rules%s"
    (fmt_opt "%.0f" firing)
    nrules
    (match firing with Some f when f > 0.0 -> "  ** FIRING **" | _ -> "");
  line "window     %ss · %s samples · Ctrl-C to quit"
    (fmt_opt "%.0f" (jnum varz [ "window_s" ]))
    (fmt_opt "%.0f" (jnum varz [ "samples" ]));
  Buffer.contents b

(* ANSI clear + home, emitted only on a real terminal: the frame body
   always prints, so redirected output is a sequence of readable
   frames. *)
let clear_screen =
  let sink = ref None in
  fun out ->
    let s =
      match !sink with
      | Some s -> s
      | None ->
          let s = Obs.Progress.tty_sink ~isatty:(fun () -> Unix.isatty Unix.stdout) out in
          sink := Some s;
          s
    in
    s "\027[2J\027[H"

let run ?(out = fun s -> print_string s; flush stdout) ~host ~port ~window ~interval_s
    ~count () =
  let target = Printf.sprintf "%s:%d" host port in
  let varz_path = Printf.sprintf "/varz?window=%s" window in
  let rec loop remaining =
    match (fetch_json ~host ~port "/statusz", fetch_json ~host ~port varz_path) with
    | Error e, _ | _, Error e -> Error e
    | Ok statusz, Ok varz ->
        clear_screen out;
        out (render ~target ~statusz ~varz);
        let remaining = Option.map (fun n -> n - 1) remaining in
        if remaining = Some 0 then Ok ()
        else begin
          (try Unix.sleepf interval_s with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop remaining
        end
  in
  loop count
