(** The service's endpoints, as a {!Router} route table.

    - [GET /healthz] — liveness: [{"status":"ok"}];
    - [GET /metrics] — live Prometheus exposition of the Obs registry
      (resource gauges sampled per scrape), with
      [Content-Type: text/plain; version=0.0.4];
    - [GET /statusz] — one JSON health document: a [build] block
      (version, OCaml version, worker count, sampler step), an [alerts]
      summary (rule/firing counts), uptime, request counts by status
      class, request-latency p50/p95/p99 (estimated from the
      [server.request.ms] histogram), result-cache occupancy and GC
      gauges;
    - [GET /varz?window=60s] — windowed self-monitoring JSON from the
      {!Monitor} ring: per-metric series as [[t_rel_s, v]] points
      (t relative to the newest sample) plus windowed counter rates and
      histogram p50/p95/p99; samples the ring on scrape, so it works
      without the background sampler too.  Bad [window] → 400;
    - [GET /alertz] — SLO rule states (ok/firing, last measurement,
      transition count, state age);
    - [GET /dashboard?window=60s] — the {!Dashboard} HTML/SVG sparkline
      page over the same windowed data, zero client-side dependencies;
    - [POST /simulate], [POST /scenario], [POST /countries] — run (or
      serve from the result cache) the corresponding analysis; the JSON
      request body overlays {!Api} defaults, and the response body is
      byte-identical to the CLI's [--json] output for the same
      parameters;
    - [POST /sweep] — expand a JSON grid object
      ({!Api.sweep_axes_of_json}) into cells and stream one JSONL row
      per cell as a chunked response ({!Stormsim.Sweep}), byte-identical
      to [solarstorm sweep] for the same grid.  Malformed grids are
      fixed 400s; [/statusz] carries the served-sweep counters
      ([server.sweep.cells], [server.sweep.rows_streamed],
      [server.sweep.plans_compiled]).

    Each analysis POST handler runs under a ["server.handler"] span and
    goes through {!Api.with_cache}, so repeated identical requests are
    answered from the LRU without re-running trials; [/sweep] runs
    under ["server.sweep"] and bypasses the result cache. *)

val version : string
(** The binary's version string, shared by the CLI [--version] and the
    /statusz build block. *)

val routes : unit -> Router.route list
