(** The service's endpoints, as a {!Router} route table.

    - [GET /healthz] — liveness: [{"status":"ok"}];
    - [GET /metrics] — live Prometheus exposition of the Obs registry
      (resource gauges sampled per scrape), with
      [Content-Type: text/plain; version=0.0.4];
    - [GET /statusz] — one JSON health document: uptime, request counts
      by status class, request-latency p50/p95/p99 (estimated from the
      [server.request.ms] histogram), result-cache occupancy and GC
      gauges;
    - [POST /simulate], [POST /scenario], [POST /countries] — run (or
      serve from the result cache) the corresponding analysis; the JSON
      request body overlays {!Api} defaults, and the response body is
      byte-identical to the CLI's [--json] output for the same
      parameters.

    Each POST handler runs under a ["server.handler"] span and goes
    through {!Api.with_cache}, so repeated identical requests are
    answered from the LRU without re-running trials. *)

val routes : unit -> Router.route list
