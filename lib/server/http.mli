(** Minimal, hardened HTTP/1.1 reader/writer over anything that can
    produce bytes.

    This is not a general web server — it parses exactly the requests
    the simulation service accepts (a request line, CRLF headers, an
    optional [Content-Length] body) and refuses everything else with a
    4xx mapping instead of an exception.  Hard bounds on head and body
    size plus a per-read timeout make a malformed or malicious peer cost
    a bounded amount of memory and time.

    A {!conn} buffers leftover bytes between requests, so pipelined
    requests (several requests sent back-to-back on one connection)
    parse one at a time with {!parse_request}. *)

type meth = GET | POST | Other of string

type request = {
  meth : meth;
  target : string;  (** request target as sent, query string included *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type limits = { max_head : int; max_body : int }

val default_limits : limits
(** 8 KiB of request line + headers, 1 MiB of body. *)

type parse_error =
  | Bad_request of string  (** 400: malformed line, header or body *)
  | Head_too_large  (** 431: request line + headers over [max_head] *)
  | Body_too_large  (** 413: declared [Content-Length] over [max_body] *)
  | Timeout  (** 408: peer stalled past the read timeout *)
  | Eof  (** peer closed cleanly between requests — not an error *)

exception Source_timeout
(** Raised by a {!conn} source when a read times out; {!parse_request}
    maps it to {!Timeout}. *)

type conn
(** A byte source plus the unconsumed tail of previous reads. *)

val conn_of_string : string -> conn
(** In-memory connection (tests, benchmarks): the whole peer input up
    front, EOF after. *)

val conn_of_fd : ?timeout_s:float -> Unix.file_descr -> conn
(** Connection over a socket.  Each refill waits at most [timeout_s]
    (default 5 s) for readability before raising {!Source_timeout}. *)

val buffered : conn -> bool
(** True when bytes from a previous read are waiting — a pipelined
    request may be parseable without touching the socket. *)

val parse_request : ?limits:limits -> conn -> (request, parse_error) result
(** Parse the next request off the connection.  Leftover bytes after the
    body stay buffered for the next call.  Never raises: source timeouts
    and EOFs come back as [Error]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val path : request -> string
(** {!request.target} with any [?query] suffix removed. *)

val query_params : request -> (string * string) list
(** Key/value pairs from the target's query string, in order.  A key
    with no [=] maps to [""].  No percent-decoding — our query grammar
    ([window=60s]) never needs it. *)

val query_param : request -> string -> string option
(** First value of one query key. *)

val wants_close : request -> bool
(** True when the peer asked for [Connection: close], or spoke HTTP/1.0
    without [Connection: keep-alive]. *)

(** {2 Responses} *)

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

val response :
  ?content_type:string ->
  ?headers:(string * string) list ->
  status:int ->
  string ->
  response
(** Build a response (default content type [application/json]). *)

val error_body : string -> string
(** [{"error":"..."}\n] — the service's uniform error body. *)

val error_response : parse_error -> response
(** The 4xx response a parse error maps to.  @raise Invalid_argument on
    {!Eof}, which is not a protocol error. *)

val reason : int -> string
(** Canonical reason phrase for the status codes the service emits. *)

val to_string : close:bool -> response -> string
(** Serialize with [Content-Length] and a [Connection:
    close|keep-alive] header. *)

(** {2 Chunked transfer}

    The streaming path ([POST /sweep]): a response whose length is
    unknown up front goes out as [Transfer-Encoding: chunked] — a head
    without [Content-Length], then each payload framed as
    [<hex size>CRLF<bytes>CRLF], then the terminal [0CRLFCRLF].  Fixed
    responses ({!to_string}) are untouched by any of this. *)

val chunk : string -> string
(** Frame one payload as a chunk.  [""] frames to [""] — an empty chunk
    would read as the terminator, so empty payloads are dropped. *)

val last_chunk : string
(** The terminal chunk, ["0\r\n\r\n"]. *)

val stream_head :
  ?content_type:string ->
  ?headers:(string * string) list ->
  status:int ->
  close:bool ->
  unit ->
  string
(** The head of a chunked response: status line, [content-type]
    (default [application/json]), [transfer-encoding: chunked],
    [connection], extra headers, blank line. *)

val respond_stream :
  ?content_type:string ->
  ?headers:(string * string) list ->
  status:int ->
  close:bool ->
  write:(string -> unit) ->
  ((string -> unit) -> unit) ->
  unit
(** [respond_stream ~write producer] writes the {!stream_head}, runs
    [producer emit] — every non-empty [emit] payload is framed and
    handed to [write] immediately (per-chunk flush: [write] is expected
    to push bytes to the peer, not buffer them) — then writes
    {!last_chunk}.  Usable by any handler; exceptions from [producer]
    propagate after the head has been written, so the caller must treat
    them as a dead connection, not as a reportable error. *)

val read_chunk : ?limits:limits -> conn -> (string option, parse_error) result
(** Read one chunk off a connection positioned inside a chunked body:
    [Ok (Some data)] per chunk, [Ok None] for the terminal chunk (its
    trailing CRLF consumed — trailer sections are not supported).
    Malformed sizes or framing are [Bad_request]; a chunk declared over
    [max_body] is [Body_too_large]. *)

val read_chunked_body : ?limits:limits -> conn -> (string, parse_error) result
(** Concatenate {!read_chunk} until the terminal chunk; the total is
    bounded by [max_body]. *)
