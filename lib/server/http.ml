(* Hardened HTTP/1.1 reader/writer.  See the interface for the contract;
   the implementation notes that matter:

   - the head (request line + headers) is accumulated into [pending]
     until the CRLFCRLF terminator shows up, with a byte cap checked on
     every refill so a peer streaming garbage can't grow the buffer
     unboundedly;
   - [Content-Length] is bounds-checked *before* the body is read, so an
     oversized declaration is rejected for the price of its headers;
   - all reads go through the connection's [src] thunk, which is where
     the fd variant enforces the per-read timeout — the parser itself
     never touches a socket. *)

type meth = GET | POST | Other of string

type request = {
  meth : meth;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type limits = { max_head : int; max_body : int }

let default_limits = { max_head = 8 * 1024; max_body = 1024 * 1024 }

type parse_error =
  | Bad_request of string
  | Head_too_large
  | Body_too_large
  | Timeout
  | Eof

exception Source_timeout

type conn = { src : unit -> string; mutable pending : string }

let conn_of_string s =
  let remaining = ref s in
  let src () =
    let chunk = !remaining in
    remaining := "";
    chunk
  in
  { src; pending = "" }

let conn_of_fd ?(timeout_s = 5.0) fd =
  let buf = Bytes.create 4096 in
  let rec src () =
    match Unix.select [ fd ] [] [] timeout_s with
    | [], _, _ -> raise Source_timeout
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> src ()
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ""
        | n -> Bytes.sub_string buf 0 n
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ""
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> src ())
  in
  { src; pending = "" }

let buffered c = c.pending <> ""

(* --- head parsing --- *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go from

let parse_meth = function
  | "GET" -> GET
  | "POST" -> POST
  | m -> Other m

let header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error (Bad_request ("malformed header line: " ^ line))
  | Some i ->
      let name = String.sub line 0 i in
      let ok_name_char ch =
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '-' || ch = '_'
      in
      if not (String.for_all ok_name_char name) then
        Error (Bad_request ("malformed header name: " ^ name))
      else
        let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        Ok (String.lowercase_ascii name, value)

let request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error (Bad_request ("unsupported protocol version: " ^ version))
      else if target.[0] <> '/' && target <> "*" then
        Error (Bad_request ("malformed request target: " ^ target))
      else Ok (parse_meth meth, target, version)
  | _ -> Error (Bad_request ("malformed request line: " ^ line))

let rec split_crlf s =
  match find_sub s "\r\n" 0 with
  | None -> [ s ]
  | Some i -> String.sub s 0 i :: split_crlf (String.sub s (i + 2) (String.length s - i - 2))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse_head head =
  match split_crlf head with
  | [] -> Error (Bad_request "empty request head")
  | first :: rest ->
      let* meth, target, version = request_line first in
      let* headers =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* kv = header_line line in
            Ok (kv :: acc))
          (Ok []) rest
      in
      Ok (meth, target, version, List.rev headers)

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let path req =
  match String.index_opt req.target '?' with
  | None -> req.target
  | Some i -> String.sub req.target 0 i

let query_params req =
  match String.index_opt req.target '?' with
  | None -> []
  | Some i ->
      String.sub req.target (i + 1) (String.length req.target - i - 1)
      |> String.split_on_char '&'
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (kv, "")
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) ))

let query_param req name = List.assoc_opt name (query_params req)

let wants_close req =
  let conn = Option.map String.lowercase_ascii (header req "connection") in
  match (req.version, conn) with
  | _, Some "close" -> true
  | "HTTP/1.0", Some "keep-alive" -> false
  | "HTTP/1.0", _ -> true
  | _ -> false

(* Refill [pending] until [want] returns a position, EOF, cap or
   timeout. *)
let parse_request ?(limits = default_limits) c =
  let refill () =
    match c.src () with
    | "" -> false
    | chunk ->
        c.pending <- c.pending ^ chunk;
        true
  in
  let rec head_end () =
    match find_sub c.pending "\r\n\r\n" 0 with
    | Some i -> Ok i
    | None ->
        if String.length c.pending > limits.max_head then Error Head_too_large
        else if refill () then head_end ()
        else if c.pending = "" then Error Eof
        else Error (Bad_request "truncated request head")
  in
  match
    let* hd_end = head_end () in
    if hd_end > limits.max_head then Error Head_too_large
    else
      let head = String.sub c.pending 0 hd_end in
      c.pending <-
        String.sub c.pending (hd_end + 4) (String.length c.pending - hd_end - 4);
      let* meth, target, version, headers = parse_head head in
      let req = { meth; target; version; headers; body = "" } in
      let* () =
        match header req "transfer-encoding" with
        | Some _ -> Error (Bad_request "transfer-encoding is not supported")
        | None -> Ok ()
      in
      let* body_len =
        match header req "content-length" with
        | None -> Ok 0
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some n when n >= 0 -> Ok n
            | _ -> Error (Bad_request ("malformed content-length: " ^ v)))
      in
      if body_len > limits.max_body then Error Body_too_large
      else
        let rec body () =
          if String.length c.pending >= body_len then begin
            let b = String.sub c.pending 0 body_len in
            c.pending <-
              String.sub c.pending body_len (String.length c.pending - body_len);
            Ok b
          end
          else if refill () then body ()
          else Error (Bad_request "truncated request body")
        in
        let* body = body () in
        Ok { req with body }
  with
  | r -> r
  | exception Source_timeout -> Error Timeout

(* --- responses --- *)

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

let response ?(content_type = "application/json") ?(headers = []) ~status body =
  { status; content_type; extra_headers = headers; body }

let error_body msg = Printf.sprintf "{\"error\":\"%s\"}\n" (Obs.Json.escape msg)

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let error_response = function
  | Bad_request msg -> response ~status:400 (error_body msg)
  | Head_too_large -> response ~status:431 (error_body "request head too large")
  | Body_too_large -> response ~status:413 (error_body "request body too large")
  | Timeout -> response ~status:408 (error_body "request timed out")
  | Eof -> invalid_arg "Http.error_response: Eof is not a protocol error"

(* --- chunked transfer framing --- *)

let chunk s =
  if s = "" then "" else Printf.sprintf "%x\r\n%s\r\n" (String.length s) s

let last_chunk = "0\r\n\r\n"

let stream_head ?(content_type = "application/json") ?(headers = []) ~status ~close ()
    =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string buf "transfer-encoding: chunked\r\n";
  Buffer.add_string buf
    (Printf.sprintf "connection: %s\r\n" (if close then "close" else "keep-alive"));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.contents buf

let respond_stream ?content_type ?headers ~status ~close ~write producer =
  write (stream_head ?content_type ?headers ~status ~close ());
  producer (fun s -> if s <> "" then write (chunk s));
  write last_chunk

(* Chunked-body reader (client side of [respond_stream]; tests and the
   load generator).  Trailer sections are not supported: the terminal
   chunk must be followed immediately by CRLF. *)

let hex_of_string s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 || n > 8 then None
  else
    let rec go i acc =
      if i = n then Some acc
      else
        match s.[i] with
        | '0' .. '9' as ch -> go (i + 1) ((acc * 16) + (Char.code ch - Char.code '0'))
        | 'a' .. 'f' as ch ->
            go (i + 1) ((acc * 16) + (Char.code ch - Char.code 'a' + 10))
        | 'A' .. 'F' as ch ->
            go (i + 1) ((acc * 16) + (Char.code ch - Char.code 'A' + 10))
        | _ -> None
    in
    go 0 0

let read_chunk ?(limits = default_limits) c =
  let refill () =
    match c.src () with
    | "" -> false
    | chunk ->
        c.pending <- c.pending ^ chunk;
        true
  in
  let drop n = c.pending <- String.sub c.pending n (String.length c.pending - n) in
  let rec size_line_end () =
    match find_sub c.pending "\r\n" 0 with
    | Some i -> Ok i
    | None ->
        (* A size line is a short hex count plus optional extensions —
           anything growing past a head's budget is garbage. *)
        if String.length c.pending > limits.max_head then
          Error (Bad_request "chunk size line too long")
        else if refill () then size_line_end ()
        else Error (Bad_request "truncated chunk")
  in
  match
    let* le = size_line_end () in
    let size_line = String.sub c.pending 0 le in
    let size_str =
      match String.index_opt size_line ';' with
      | Some i -> String.sub size_line 0 i
      | None -> size_line
    in
    let* size =
      match hex_of_string size_str with
      | Some n -> Ok n
      | None -> Error (Bad_request ("malformed chunk size: " ^ size_line))
    in
    if size > limits.max_body then Error Body_too_large
    else begin
      drop (le + 2);
      let total = size + 2 in
      let rec need () =
        if String.length c.pending >= total then Ok ()
        else if refill () then need ()
        else Error (Bad_request "truncated chunk")
      in
      let* () = need () in
      if String.sub c.pending size 2 <> "\r\n" then
        Error (Bad_request "malformed chunk terminator")
      else begin
        let data = String.sub c.pending 0 size in
        drop total;
        if size = 0 then Ok None else Ok (Some data)
      end
    end
  with
  | r -> r
  | exception Source_timeout -> Error Timeout

let read_chunked_body ?(limits = default_limits) c =
  let buf = Buffer.create 256 in
  let rec go () =
    let* data = read_chunk ~limits c in
    match data with
    | None -> Ok (Buffer.contents buf)
    | Some data ->
        if Buffer.length buf + String.length data > limits.max_body then
          Error Body_too_large
        else begin
          Buffer.add_string buf data;
          go ()
        end
  in
  go ()

let to_string ~close r =
  let buf = Buffer.create (String.length r.body + 256) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason r.status));
  Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" r.content_type);
  Buffer.add_string buf (Printf.sprintf "content-length: %d\r\n" (String.length r.body));
  Buffer.add_string buf
    (Printf.sprintf "connection: %s\r\n" (if close then "close" else "keep-alive"));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.extra_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  Buffer.contents buf
