(** Process-global self-monitoring state: the {!Obs.Timeseries} ring and
    {!Obs.Alerts} engine behind [/varz], [/alertz] and [/dashboard].

    Global because handlers are context-free functions, like the metrics
    registry they sample.  {!Service.run} calls {!configure} at startup
    (fresh ring per server run); anything may call {!sample_now} for
    on-demand, sampler-less use. *)

type t = {
  ts : Obs.Timeseries.t;
  alerts : Obs.Alerts.t;
  step_s : float;  (** intended sampling step, seconds *)
}

val configure :
  ?clock:Obs.Clock.t ->
  ?step_s:float ->
  ?retention:int ->
  ?rules:Obs.Alerts.rule list ->
  unit ->
  t
(** Replace the global state with a fresh ring + engine (defaults: 1 s
    step, 600-slot retention, no rules).  Non-positive [step_s] falls
    back to 1 s. *)

val current : unit -> t
(** The active state, lazily defaulted if {!configure} was never
    called. *)

val sample_now : unit -> unit
(** One tick: snapshot the registry into the ring, then evaluate all
    alert rules.  Called by the service sampler domain each step and by
    one-shot CLI consumers. *)

val timeseries : unit -> Obs.Timeseries.t
val alerts : unit -> Obs.Alerts.t
val step_s : unit -> float
