let healthz _req = Http.response ~status:200 "{\"status\":\"ok\"}\n"

(* Single source of truth for the binary's version: the CLI's
   [Cmd.info ~version] and the /statusz build block both read it. *)
let version = "1.0.0"

(* Process start, for /statusz uptime.  Module-initialisation time is
   close enough to exec time and needs no plumbing through Service. *)
let started_ns = Obs.Clock.monotonic ()

let statusz _req =
  Obs.Resource.sample ();
  let snap = Obs.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap with Some (Obs.Metrics.Counter n) -> n | _ -> 0
  in
  let gauge name =
    match List.assoc_opt name snap with Some (Obs.Metrics.Gauge v) -> v | _ -> 0.0
  in
  let open Obs.Json in
  let int n = Number (float_of_int n) in
  let latency =
    match List.assoc_opt "server.request.ms" snap with
    | Some (Obs.Metrics.Histogram { bounds; counts; sum; count }) ->
        let q p =
          match Obs.Metrics.quantile ~bounds ~counts p with
          | Some v -> Number v
          | None -> Null
        in
        Object
          [
            ("count", int count);
            ("sum_ms", Number sum);
            ("p50", q 0.5);
            ("p95", q 0.95);
            ("p99", q 0.99);
          ]
    | _ -> Object [ ("count", int 0); ("p50", Null); ("p95", Null); ("p99", Null) ]
  in
  (* One row per worker domain that has registered its counters this
     process (the pool registers them at boot), derived from the metric
     names themselves so this handler needs no channel to Service.  The
     rows' [requests] sum to [requests.total]: both counters are bumped
     at the same instruction in the worker. *)
  let workers =
    let worker_id name =
      match String.split_on_char '.' name with
      | [ "server"; "worker"; i; "requests" ] -> int_of_string_opt i
      | _ -> None
    in
    List.filter_map (fun (name, _) -> worker_id name) snap
    |> List.sort_uniq compare
    |> List.map (fun i ->
           Object
             [
               ("id", int i);
               ("requests", int (counter (Printf.sprintf "server.worker.%d.requests" i)));
               ("busy_ms", Number (gauge (Printf.sprintf "server.worker.%d.busy_ms" i)));
             ])
  in
  let alerts_summary =
    let a = Monitor.alerts () in
    Object
      [
        ("rules", int (List.length (Obs.Alerts.rules a)));
        ("firing", int (Obs.Alerts.firing_count a));
      ]
  in
  let body =
    Object
      [
        ("status", String "ok");
        ( "build",
          Object
            [
              ("version", String version);
              ("ocaml", String Sys.ocaml_version);
              ("workers", int (int_of_float (gauge "server.workers")));
              ("sampler_step_s", Number (Monitor.step_s ()));
            ] );
        ("alerts", alerts_summary);
        ( "uptime_s",
          Number (Int64.to_float (Int64.sub (Obs.Clock.monotonic ()) started_ns) /. 1e9)
        );
        ( "requests",
          Object
            [
              ("total", int (counter "server.requests"));
              ("2xx", int (counter "server.resp.2xx"));
              ("4xx", int (counter "server.resp.4xx"));
              ("5xx", int (counter "server.resp.5xx"));
              ("rejected_busy", int (counter "server.rejected.busy"));
            ] );
        ("latency_ms", latency);
        ("workers", Array workers);
        ( "sweep",
          Object
            [
              ("cells", int (counter "server.sweep.cells"));
              ("rows_streamed", int (counter "server.sweep.rows_streamed"));
              ("plans_compiled", int (counter "server.sweep.plans_compiled"));
            ] );
        ( "cache",
          Object
            [
              ("entries", int (Api.cache_length ()));
              ("capacity", int (Api.cache_capacity ()));
              ("hits", int (counter "server.cache.hits"));
              ("misses", int (counter "server.cache.misses"));
              ("evictions", int (counter "server.cache.evictions"));
            ] );
        ( "gc",
          Object
            [
              ("heap_words", Number (gauge "gc.heap_words"));
              ("minor_collections", Number (gauge "gc.minor_collections"));
              ("major_collections", Number (gauge "gc.major_collections"));
              ("compactions", Number (gauge "gc.compactions"));
            ] );
      ]
  in
  Http.response ~status:200 (Obs.Json.to_string body ^ "\n")

let metrics _req =
  (* Sample the GC/wall-clock gauges per scrape so /metrics reflects the
     process as of this request, exactly like the CLI dump paths do. *)
  Obs.Resource.sample ();
  Http.response
    ~content_type:"text/plain; version=0.0.4"
    ~status:200
    (Obs.Export.prometheus (Obs.Metrics.snapshot ()))

(* ---- windowed self-monitoring: /varz, /alertz, /dashboard ---- *)

let default_window_ns = 60_000_000_000L

let parse_window_param req =
  match Http.query_param req "window" with
  | None -> Ok default_window_ns
  | Some s -> Obs.Alerts.parse_window s

let state_name = function Obs.Alerts.Firing -> "firing" | Obs.Alerts.Ok_state -> "ok"

(* /varz points are [t_rel_s, v] pairs with t relative to the newest
   sample (0 = now, older is negative): raw monotonic nanosecond stamps
   exceed the 2^53 float mantissa, so encoding them as JSON numbers
   would silently round. *)
let varz req =
  match parse_window_param req with
  | Error msg -> Http.response ~status:400 (Http.error_body msg)
  | Ok window_ns ->
      Obs.Resource.sample ();
      (* Sample on scrape too: /varz stays live for sampler-less
         (one-shot) processes, and under the background sampler an extra
         timestamped sample only refines the series. *)
      Monitor.sample_now ();
      let m = Monitor.current () in
      let ts = m.Monitor.ts in
      let open Obs.Json in
      let now_ns =
        match Obs.Timeseries.latest ts with Some (t, _) -> t | None -> 0L
      in
      let rel t = Int64.to_float (Int64.sub t now_ns) /. 1e9 in
      let points pts =
        Array
          (List.map
             (fun p ->
               Array [ Number (rel p.Obs.Timeseries.p_ts_ns); Number p.Obs.Timeseries.p_v ])
             pts)
      in
      let opt_num = function Some v -> Number v | None -> Null in
      let series =
        match Obs.Timeseries.latest ts with
        | None -> []
        | Some (_, snap) ->
            List.map
              (fun (name, v) ->
                match v with
                | Obs.Metrics.Counter _ ->
                    ( name,
                      Object
                        [
                          ("kind", String "counter");
                          ( "rate_per_s",
                            opt_num (Obs.Timeseries.windowed_rate ts ~window_ns name) );
                          ("points", points (Obs.Timeseries.rate_series ts ~window_ns name));
                        ] )
                | Obs.Metrics.Gauge g ->
                    ( name,
                      Object
                        [
                          ("kind", String "gauge");
                          ("value", Number g);
                          ("points", points (Obs.Timeseries.gauge_series ts ~window_ns name));
                        ] )
                | Obs.Metrics.Histogram _ ->
                    let q p =
                      opt_num (Obs.Timeseries.windowed_quantile ts ~window_ns ~q:p name)
                    in
                    let qp p =
                      points (Obs.Timeseries.quantile_series ts ~window_ns ~q:p name)
                    in
                    ( name,
                      Object
                        [
                          ("kind", String "histogram");
                          ( "count",
                            match Obs.Timeseries.windowed_count ts ~window_ns name with
                            | Some n -> Number (float_of_int n)
                            | None -> Null );
                          ("p50", q 0.5);
                          ("p95", q 0.95);
                          ("p99", q 0.99);
                          ("p50_points", qp 0.5);
                          ("p95_points", qp 0.95);
                          ("p99_points", qp 0.99);
                        ] ))
              snap
      in
      let body =
        Object
          [
            ("window_s", Number (Int64.to_float window_ns /. 1e9));
            ("step_s", Number m.Monitor.step_s);
            ("samples", Number (float_of_int (Obs.Timeseries.length ts)));
            ("series", Object series);
          ]
      in
      Http.response ~status:200 (to_string body ^ "\n")

let alertz _req =
  let m = Monitor.current () in
  let now_ns =
    match Obs.Timeseries.latest m.Monitor.ts with Some (t, _) -> t | None -> 0L
  in
  let open Obs.Json in
  let rule_json st =
    let open Obs.Alerts in
    let r = st.st_rule in
    Object
      [
        ("rule", String r.r_src);
        ("metric", String r.r_metric);
        ( "objective",
          String
            (Printf.sprintf "%s%s%g" (agg_to_string r.r_agg) (cmp_to_string r.r_cmp)
               r.r_threshold) );
        ("window_s", Number (window_s r));
        ("state", String (state_name st.st_state));
        ( "since_age_s",
          match st.st_since_ns with
          | Some t -> Number (Int64.to_float (Int64.sub now_ns t) /. 1e9)
          | None -> Null );
        ("transitions", Number (float_of_int st.st_transitions));
        ("value", match st.st_value with Some v -> Number v | None -> Null);
        ( "short_value",
          match st.st_short_value with Some v -> Number v | None -> Null );
      ]
  in
  let body =
    Object
      [
        ("firing", Number (float_of_int (Obs.Alerts.firing_count m.Monitor.alerts)));
        ("rules", Array (List.map rule_json (Obs.Alerts.statuses m.Monitor.alerts)));
      ]
  in
  Http.response ~status:200 (to_string body ^ "\n")

let dashboard req =
  match parse_window_param req with
  | Error msg -> Http.response ~status:400 (Http.error_body msg)
  | Ok window_ns ->
      Obs.Resource.sample ();
      Monitor.sample_now ();
      let m = Monitor.current () in
      let ts = m.Monitor.ts in
      let fmt v = Printf.sprintf "%.4g" v in
      let values pts = List.map (fun p -> p.Obs.Timeseries.p_v) pts in
      let rows =
        match Obs.Timeseries.latest ts with
        | None -> []
        | Some (_, snap) ->
            List.map
              (fun (name, v) ->
                match v with
                | Obs.Metrics.Counter _ ->
                    {
                      Dashboard.row_name = name;
                      row_kind = "rate";
                      row_value =
                        (match Obs.Timeseries.windowed_rate ts ~window_ns name with
                        | Some r -> fmt r ^ "/s"
                        | None -> "-");
                      row_series = values (Obs.Timeseries.rate_series ts ~window_ns name);
                    }
                | Obs.Metrics.Gauge g ->
                    {
                      Dashboard.row_name = name;
                      row_kind = "gauge";
                      row_value = fmt g;
                      row_series = values (Obs.Timeseries.gauge_series ts ~window_ns name);
                    }
                | Obs.Metrics.Histogram _ ->
                    {
                      Dashboard.row_name = name;
                      row_kind = "p99";
                      row_value =
                        (match
                           Obs.Timeseries.windowed_quantile ts ~window_ns ~q:0.99 name
                         with
                        | Some v -> fmt v
                        | None -> "-");
                      row_series =
                        values (Obs.Timeseries.quantile_series ts ~window_ns ~q:0.99 name);
                    })
              snap
      in
      let alerts =
        List.map
          (fun st ->
            let open Obs.Alerts in
            {
              Dashboard.al_rule = st.st_rule.r_src;
              al_state = state_name st.st_state;
              al_value = (match st.st_value with Some v -> fmt v | None -> "-");
            })
          (Obs.Alerts.statuses m.Monitor.alerts)
      in
      Http.response
        ~content_type:"text/html; charset=utf-8"
        ~status:200
        (Dashboard.render
           ~window_s:(Int64.to_float window_ns /. 1e9)
           ~step_s:m.Monitor.step_s
           ~samples:(Obs.Timeseries.length ts)
           ~rows ~alerts)

(* One shape for the three analysis endpoints: decode the body over the
   defaults, derive the canonical key, and answer through the result
   cache.  [compute] runs under the "server.handler" span — a cache hit
   never opens it (nothing is computed). *)
let analysis ~base ~of_json ~key ~compute (req : Http.request) =
  match Api.params_of_body ~base ~of_json req.Http.body with
  | Error msg -> Http.response ~status:400 (Http.error_body msg)
  | Ok params -> (
      match
        Api.with_cache ~key:(key params) (fun () ->
            Obs.Span.with_ ~name:"server.handler" (fun () -> compute params))
      with
      | Ok body -> Http.response ~status:200 body
      | Error msg -> Http.response ~status:400 (Http.error_body msg))

let simulate =
  analysis ~base:Api.sim_defaults ~of_json:Api.sim_of_json ~key:Api.sim_key
    ~compute:(fun p -> Ok (Api.simulate_body p))

let scenario =
  analysis ~base:Api.scenario_defaults ~of_json:Api.scenario_of_json
    ~key:Api.scenario_key ~compute:Api.scenario_body

let countries =
  analysis ~base:Api.countries_defaults ~of_json:Api.countries_of_json
    ~key:Api.countries_key ~compute:(fun p -> Ok (Api.countries_body p))

(* ---- /sweep: grid in, chunked JSONL out ---- *)

(* Served-sweep counters, distinct from the engine's own [sweep.*]
   family: these count only what went over HTTP, so [solarstorm top]
   can show sweep throughput next to the request metrics. *)
let sw_cells = Obs.Metrics.counter "server.sweep.cells"
let sw_rows = Obs.Metrics.counter "server.sweep.rows_streamed"
let sw_plans = Obs.Metrics.counter "server.sweep.plans_compiled"

(* Grid validation happens here, before the reply is chosen, so a bad
   grid is still an ordinary fixed 400; only a valid grid starts a
   stream (whose status is already on the wire when cells execute).
   Streams bypass the result cache — a sweep's value is incremental
   delivery, and its cells already reuse plans and dataset builds. *)
let sweep (req : Http.request) =
  let bad msg = Router.Response (Http.response ~status:400 (Http.error_body msg)) in
  match
    Api.params_of_body ~base:[] ~of_json:(fun _ j -> Api.sweep_axes_of_json j)
      req.Http.body
  with
  | Error msg -> bad msg
  | Ok axes -> (
      match Stormsim.Sweep.expand axes with
      | Error msg -> bad msg
      | Ok cells ->
          Router.Stream
            {
              Router.s_status = 200;
              s_content_type = "application/x-ndjson";
              s_headers = [];
              s_body =
                (fun emit ->
                  let summary =
                    Obs.Span.with_ ~name:"server.sweep" @@ fun () ->
                    Stormsim.Sweep.run ~cells () ~emit:(fun row ->
                        Obs.Metrics.incr sw_rows;
                        emit (Stormsim.Sweep.row_line row))
                  in
                  Obs.Metrics.add sw_cells summary.Stormsim.Sweep.cells;
                  Obs.Metrics.add sw_plans summary.Stormsim.Sweep.plans_compiled);
            })

let fixed handler req = Router.Response (handler req)

let routes () =
  [
    { Router.meth = Http.GET; route_path = "/healthz"; handler = fixed healthz };
    { Router.meth = Http.GET; route_path = "/metrics"; handler = fixed metrics };
    { Router.meth = Http.GET; route_path = "/statusz"; handler = fixed statusz };
    { Router.meth = Http.GET; route_path = "/varz"; handler = fixed varz };
    { Router.meth = Http.GET; route_path = "/alertz"; handler = fixed alertz };
    { Router.meth = Http.GET; route_path = "/dashboard"; handler = fixed dashboard };
    { Router.meth = Http.POST; route_path = "/simulate"; handler = fixed simulate };
    { Router.meth = Http.POST; route_path = "/scenario"; handler = fixed scenario };
    { Router.meth = Http.POST; route_path = "/countries"; handler = fixed countries };
    { Router.meth = Http.POST; route_path = "/sweep"; handler = sweep };
  ]
