let healthz _req = Http.response ~status:200 "{\"status\":\"ok\"}\n"

(* Process start, for /statusz uptime.  Module-initialisation time is
   close enough to exec time and needs no plumbing through Service. *)
let started_ns = Obs.Clock.monotonic ()

let statusz _req =
  Obs.Resource.sample ();
  let snap = Obs.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap with Some (Obs.Metrics.Counter n) -> n | _ -> 0
  in
  let gauge name =
    match List.assoc_opt name snap with Some (Obs.Metrics.Gauge v) -> v | _ -> 0.0
  in
  let open Obs.Json in
  let int n = Number (float_of_int n) in
  let latency =
    match List.assoc_opt "server.request.ms" snap with
    | Some (Obs.Metrics.Histogram { bounds; counts; sum; count }) ->
        let q p =
          match Obs.Metrics.quantile ~bounds ~counts p with
          | Some v -> Number v
          | None -> Null
        in
        Object
          [
            ("count", int count);
            ("sum_ms", Number sum);
            ("p50", q 0.5);
            ("p95", q 0.95);
            ("p99", q 0.99);
          ]
    | _ -> Object [ ("count", int 0); ("p50", Null); ("p95", Null); ("p99", Null) ]
  in
  (* One row per worker domain that has registered its counters this
     process (the pool registers them at boot), derived from the metric
     names themselves so this handler needs no channel to Service.  The
     rows' [requests] sum to [requests.total]: both counters are bumped
     at the same instruction in the worker. *)
  let workers =
    let worker_id name =
      match String.split_on_char '.' name with
      | [ "server"; "worker"; i; "requests" ] -> int_of_string_opt i
      | _ -> None
    in
    List.filter_map (fun (name, _) -> worker_id name) snap
    |> List.sort_uniq compare
    |> List.map (fun i ->
           Object
             [
               ("id", int i);
               ("requests", int (counter (Printf.sprintf "server.worker.%d.requests" i)));
               ("busy_ms", Number (gauge (Printf.sprintf "server.worker.%d.busy_ms" i)));
             ])
  in
  let body =
    Object
      [
        ("status", String "ok");
        ( "uptime_s",
          Number (Int64.to_float (Int64.sub (Obs.Clock.monotonic ()) started_ns) /. 1e9)
        );
        ( "requests",
          Object
            [
              ("total", int (counter "server.requests"));
              ("2xx", int (counter "server.resp.2xx"));
              ("4xx", int (counter "server.resp.4xx"));
              ("5xx", int (counter "server.resp.5xx"));
              ("rejected_busy", int (counter "server.rejected.busy"));
            ] );
        ("latency_ms", latency);
        ("workers", Array workers);
        ( "cache",
          Object
            [
              ("entries", int (Api.cache_length ()));
              ("capacity", int (Api.cache_capacity ()));
              ("hits", int (counter "server.cache.hits"));
              ("misses", int (counter "server.cache.misses"));
              ("evictions", int (counter "server.cache.evictions"));
            ] );
        ( "gc",
          Object
            [
              ("heap_words", Number (gauge "gc.heap_words"));
              ("minor_collections", Number (gauge "gc.minor_collections"));
              ("major_collections", Number (gauge "gc.major_collections"));
              ("compactions", Number (gauge "gc.compactions"));
            ] );
      ]
  in
  Http.response ~status:200 (Obs.Json.to_string body ^ "\n")

let metrics _req =
  (* Sample the GC/wall-clock gauges per scrape so /metrics reflects the
     process as of this request, exactly like the CLI dump paths do. *)
  Obs.Resource.sample ();
  Http.response
    ~content_type:"text/plain; version=0.0.4"
    ~status:200
    (Obs.Export.prometheus (Obs.Metrics.snapshot ()))

(* One shape for the three analysis endpoints: decode the body over the
   defaults, derive the canonical key, and answer through the result
   cache.  [compute] runs under the "server.handler" span — a cache hit
   never opens it (nothing is computed). *)
let analysis ~base ~of_json ~key ~compute (req : Http.request) =
  match Api.params_of_body ~base ~of_json req.Http.body with
  | Error msg -> Http.response ~status:400 (Http.error_body msg)
  | Ok params -> (
      match
        Api.with_cache ~key:(key params) (fun () ->
            Obs.Span.with_ ~name:"server.handler" (fun () -> compute params))
      with
      | Ok body -> Http.response ~status:200 body
      | Error msg -> Http.response ~status:400 (Http.error_body msg))

let simulate =
  analysis ~base:Api.sim_defaults ~of_json:Api.sim_of_json ~key:Api.sim_key
    ~compute:(fun p -> Ok (Api.simulate_body p))

let scenario =
  analysis ~base:Api.scenario_defaults ~of_json:Api.scenario_of_json
    ~key:Api.scenario_key ~compute:Api.scenario_body

let countries =
  analysis ~base:Api.countries_defaults ~of_json:Api.countries_of_json
    ~key:Api.countries_key ~compute:(fun p -> Ok (Api.countries_body p))

let routes () =
  [
    { Router.meth = Http.GET; route_path = "/healthz"; handler = healthz };
    { Router.meth = Http.GET; route_path = "/metrics"; handler = metrics };
    { Router.meth = Http.GET; route_path = "/statusz"; handler = statusz };
    { Router.meth = Http.POST; route_path = "/simulate"; handler = simulate };
    { Router.meth = Http.POST; route_path = "/scenario"; handler = scenario };
    { Router.meth = Http.POST; route_path = "/countries"; handler = countries };
  ]
