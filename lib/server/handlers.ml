let healthz _req = Http.response ~status:200 "{\"status\":\"ok\"}\n"

let metrics _req =
  (* Sample the GC/wall-clock gauges per scrape so /metrics reflects the
     process as of this request, exactly like the CLI dump paths do. *)
  Obs.Resource.sample ();
  Http.response
    ~content_type:"text/plain; version=0.0.4"
    ~status:200
    (Obs.Export.prometheus (Obs.Metrics.snapshot ()))

(* One shape for the three analysis endpoints: decode the body over the
   defaults, derive the canonical key, and answer through the result
   cache.  [compute] runs under the "server.handler" span — a cache hit
   never opens it (nothing is computed). *)
let analysis ~base ~of_json ~key ~compute (req : Http.request) =
  match Api.params_of_body ~base ~of_json req.Http.body with
  | Error msg -> Http.response ~status:400 (Http.error_body msg)
  | Ok params -> (
      match
        Api.with_cache ~key:(key params) (fun () ->
            Obs.Span.with_ ~name:"server.handler" (fun () -> compute params))
      with
      | Ok body -> Http.response ~status:200 body
      | Error msg -> Http.response ~status:400 (Http.error_body msg))

let simulate =
  analysis ~base:Api.sim_defaults ~of_json:Api.sim_of_json ~key:Api.sim_key
    ~compute:(fun p -> Ok (Api.simulate_body p))

let scenario =
  analysis ~base:Api.scenario_defaults ~of_json:Api.scenario_of_json
    ~key:Api.scenario_key ~compute:Api.scenario_body

let countries =
  analysis ~base:Api.countries_defaults ~of_json:Api.countries_of_json
    ~key:Api.countries_key ~compute:(fun p -> Ok (Api.countries_body p))

let routes () =
  [
    { Router.meth = Http.GET; route_path = "/healthz"; handler = healthz };
    { Router.meth = Http.GET; route_path = "/metrics"; handler = metrics };
    { Router.meth = Http.POST; route_path = "/simulate"; handler = simulate };
    { Router.meth = Http.POST; route_path = "/scenario"; handler = scenario };
    { Router.meth = Http.POST; route_path = "/countries"; handler = countries };
  ]
