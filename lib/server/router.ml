type stream = {
  s_status : int;
  s_content_type : string;
  s_headers : (string * string) list;
  s_body : (string -> unit) -> unit;
}

type reply = Response of Http.response | Stream of stream

type route = {
  meth : Http.meth;
  route_path : string;
  handler : Http.request -> reply;
}

let meth_name = function
  | Http.GET -> "GET"
  | Http.POST -> "POST"
  | Http.Other m -> m

let dispatch ~routes req =
  let path = Http.path req in
  match List.filter (fun r -> r.route_path = path) routes with
  | [] ->
      Response (Http.response ~status:404 (Http.error_body ("no such endpoint: " ^ path)))
  | candidates -> (
      match List.find_opt (fun r -> r.meth = req.Http.meth) candidates with
      | None ->
          let allow =
            String.concat ", "
              (List.sort_uniq compare (List.map (fun r -> meth_name r.meth) candidates))
          in
          Response
            (Http.response ~status:405
               ~headers:[ ("allow", allow) ]
               (Http.error_body
                  (Printf.sprintf "%s does not accept %s (allow: %s)" path
                     (meth_name req.Http.meth) allow)))
      | Some r -> (
          try r.handler req
          with exn ->
            Response
              (Http.response ~status:500
                 (Http.error_body ("internal error: " ^ Printexc.to_string exn)))))

let to_response = function
  | Response r -> r
  | Stream s ->
      let buf = Buffer.create 256 in
      s.s_body (Buffer.add_string buf);
      Http.response ~content_type:s.s_content_type ~headers:s.s_headers
        ~status:s.s_status (Buffer.contents buf)
