(** Method × path dispatch with uniform error replies. *)

type stream = {
  s_status : int;
  s_content_type : string;
  s_headers : (string * string) list;
  s_body : (string -> unit) -> unit;
      (** The producer: called once with an [emit] sink; every payload
          it emits is streamed to the peer as one chunk
          ({!Http.respond_stream}).  It runs {e after} the handler has
          returned and the response head is on the wire, so all request
          validation must happen in the handler — a producer failure
          can only truncate the stream, never change the status. *)
}
(** A streamed reply: status and headers now, body incrementally. *)

type reply = Response of Http.response | Stream of stream
(** What a handler answers: a fixed response (written with
    [Content-Length], cacheable, exactly as before streams existed) or
    a chunked stream. *)

type route = {
  meth : Http.meth;
  route_path : string;
  handler : Http.request -> reply;
}

val dispatch : routes:route list -> Http.request -> reply
(** Route on the request's {!Http.path} (query string ignored):
    unknown path → 404, known path with the wrong method → 405 (with an
    [allow] header), handler exception → 500.  All error replies are
    fixed {!Http.error_body} JSON responses. *)

val to_response : reply -> Http.response
(** Collapse a reply to a fixed response: a [Response] unchanged, a
    [Stream] materialized by running its producer into a buffer — the
    body is the de-chunked payload bytes.  The CLI's in-process path
    and tests use this; producer exceptions propagate. *)
