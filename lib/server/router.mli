(** Method × path dispatch with uniform error replies. *)

type route = {
  meth : Http.meth;
  route_path : string;
  handler : Http.request -> Http.response;
}

val dispatch : routes:route list -> Http.request -> Http.response
(** Route on the request's {!Http.path} (query string ignored):
    unknown path → 404, known path with the wrong method → 405 (with an
    [allow] header), handler exception → 500.  All error bodies are
    {!Http.error_body} JSON. *)
