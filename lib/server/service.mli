(** The long-running simulation service: socket loop, backpressure and
    graceful shutdown behind [solarstorm serve].

    Concurrency model (DESIGN.md §8): one {e worker loop} on the calling
    domain owns every connection and handles one request at a time —
    requests themselves fan out across the Domain pool via
    {!Stormsim.Plan.run_trials_par}, so parallelism lives inside a
    request, where it is deterministic, and all process-wide caches
    ({!Datasets.Cache}, compiled plans, the result LRU) are touched
    single-threaded.  Concurrent clients are multiplexed by readiness:
    accepted connections wait in a bounded pending set and are served
    round-robin, one request per turn (keep-alive and pipelined requests
    included).

    Backpressure: when the pending set is full, new connections are
    answered [503 Service Unavailable] and closed immediately instead of
    queueing without bound.

    Shutdown: {!stop} (or SIGINT/SIGTERM via
    {!install_signal_handlers}) makes the loop stop accepting, serve
    whatever is already readable for a grace period, close everything
    and return — the CLI then exits 0. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral (the OS picks; see [on_ready]) *)
  max_pending : int;  (** accepted connections held at once; over → 503 *)
  max_head : int;  (** request-line + header byte cap (431 over it) *)
  max_body : int;  (** body byte cap (413 over it) *)
  read_timeout_s : float;  (** per-read stall budget (408 past it) *)
  idle_timeout_s : float;  (** silent keep-alive connections are closed *)
  idle_poll_s : float;  (** readiness-poll tick; bounds stop latency *)
  drain_grace_s : float;  (** budget for serving in-flight requests on stop *)
  log : string -> unit;  (** service log lines (default: stdout) *)
  trace_seed : int option;
      (** seed for per-request trace ids: [Some s] makes the n-th
          request's id identical across runs (tests, CI); [None]
          (default) seeds from wall clock ⊕ pid at {!run} time *)
}

val default_config : config

val run : ?on_ready:(port:int -> unit) -> config -> unit
(** Bind, listen and serve until {!stop}.  [on_ready] fires once with
    the actually-bound port (useful with [port = 0]) right before the
    first accept.  @raise Unix.Unix_error when the bind/listen itself
    fails (address in use, permission). *)

val stop : unit -> unit
(** Ask a running {!run} to drain and return.  Safe to call from a
    signal handler or another domain; takes effect within
    [idle_poll_s]. *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!stop} (and ignore SIGPIPE, which
    writing to a disconnected peer would otherwise raise as a process
    kill). *)
