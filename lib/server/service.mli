(** The long-running simulation service: acceptor + worker-pool socket
    loops, backpressure and graceful shutdown behind [solarstorm serve].

    Concurrency model (DESIGN.md §8): one {e acceptor} loop on the
    calling domain owns the listen socket and every idle connection; a
    pool of [workers] {e worker domains} owns requests.  The acceptor
    selects for readiness and hands each parse-ready connection — plus a
    trace id drawn before handoff — to the pool over a bounded job
    queue; the receiving worker parses, dispatches and writes the
    response end-to-end, then returns the connection through a
    completion queue (self-pipe wakeup).  A connection is owned by
    exactly one domain at any moment.  One request per handoff keeps
    round-robin fairness: a pipelining client re-queues behind everyone
    else after each response.

    Requests on different workers run genuinely in parallel, so
    everything they touch is domain-safe: the result cache is
    lock-striped ({!Lru.Sharded} via {!Api}), plan/dataset memos are
    single-flight mutexes, metrics are sharded atomics, and the trace
    context is domain-local.  Responses are byte-identical to the
    single-worker path for any worker count — simulation draws are
    per-request state, exactly as {!Stormsim.Plan.run_trials_par}
    proves per-trial.

    Backpressure: accepted connections are capped at [max_pending]
    (idle + in flight) and the job queue at [queue_depth]; past either,
    new work is answered [503 Service Unavailable] immediately instead
    of queueing without bound.

    Shutdown: {!stop} (or SIGINT/SIGTERM via {!install_signal_handlers})
    makes the acceptor stop accepting, serve in-flight and
    already-readable work for a grace period with [Connection: close],
    then park every worker (shutdown sentinels queue FIFO behind
    remaining jobs, so accepted work is answered), join them and
    return — the CLI then exits 0. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral (the OS picks; see [on_ready]) *)
  workers : int;
      (** worker domains serving requests; [0] (default) =
          {!Exec.default_jobs} — i.e. [--jobs]/[SOLARSTORM_JOBS], else 1 *)
  queue_depth : int;
      (** job-queue bound between acceptor and workers; [0] (default) =
          [max_pending], which makes the queue bound unreachable (the
          pending cap trips first) — set lower for earlier shedding *)
  max_pending : int;  (** connections held at once (idle + in flight); over → 503 *)
  max_head : int;  (** request-line + header byte cap (431 over it) *)
  max_body : int;  (** body byte cap (413 over it) *)
  read_timeout_s : float;  (** per-read stall budget (408 past it) *)
  idle_timeout_s : float;  (** silent keep-alive connections are closed *)
  idle_poll_s : float;  (** readiness-poll tick; bounds stop latency *)
  drain_grace_s : float;  (** budget for serving in-flight requests on stop *)
  log : string -> unit;  (** service log lines (default: stdout) *)
  trace_seed : int option;
      (** seed for per-request trace ids: [Some s] makes the n-th
          request's id identical across runs (tests, CI); [None]
          (default) seeds from wall clock ⊕ pid at {!run} time.  Ids are
          drawn by the acceptor in handoff order, so they stay
          deterministic for any worker count when requests arrive
          sequentially *)
  sampler_step_s : float;
      (** self-monitoring sampling step (default 1 s): a dedicated
          sampler domain freezes a metrics snapshot into the {!Monitor}
          ring and evaluates SLO rules every step.  [0] disables the
          sampler ([/varz] still samples on scrape) *)
  slo_rules : Obs.Alerts.rule list;
      (** burn-rate alert rules evaluated each sampler step (the CLI
          parses [--slo] strings with {!Obs.Alerts.parse_rule}) *)
  retention : int;  (** ring slots kept for windowed queries (default 600) *)
}

val default_config : config

val run : ?on_ready:(port:int -> unit) -> config -> unit
(** Bind, listen, spawn the worker pool (plus the self-monitoring
    sampler domain unless [sampler_step_s = 0]) and serve until {!stop};
    all spawned domains are joined before returning.  [on_ready] fires once
    with the actually-bound port (useful with [port = 0]) right before
    the first accept.  Per-worker activity lands on the
    [server.worker.<i>.requests] counters and
    [server.worker.<i>.busy_ms] gauges (surfaced by [/statusz]); the
    pool size is on the [server.workers] gauge.
    @raise Unix.Unix_error when the bind/listen itself fails (address
    in use, permission). *)

val stop : unit -> unit
(** Ask a running {!run} to drain and return.  Safe to call from a
    signal handler or another domain; takes effect within
    [idle_poll_s]. *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!stop} (and ignore SIGPIPE, which
    writing to a disconnected peer would otherwise raise as a process
    kill). *)
