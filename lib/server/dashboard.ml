(* The /dashboard page: server-rendered HTML with inline SVG
   sparklines, zero client-side dependencies.  A browser pointed at a
   running server gets a self-refreshing view of the same windowed
   series /varz serves as JSON — the <meta refresh> does the polling,
   so no JavaScript is needed at all.

   Rendering is split pure-side: [spark_svg] and [render] map plain
   data to markup, so tests can assert on the output without a socket. *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  buf

let escape s = Buffer.contents (html_escape s)

(* An inline SVG polyline over [vs], scaled to fit; flat series render
   as a midline instead of dividing by zero. *)
let spark_svg ?(w = 240) ?(h = 36) vs =
  match vs with
  | [] -> Printf.sprintf "<svg width=\"%d\" height=\"%d\"></svg>" w h
  | vs ->
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      let span = hi -. lo in
      let n = List.length vs in
      let pad = 2.0 in
      let x i =
        if n = 1 then float_of_int w /. 2.0
        else pad +. (float_of_int i /. float_of_int (n - 1) *. (float_of_int w -. (2.0 *. pad)))
      in
      let y v =
        if span <= 0.0 then float_of_int h /. 2.0
        else
          pad +. ((1.0 -. ((v -. lo) /. span)) *. (float_of_int h -. (2.0 *. pad)))
      in
      let pts =
        List.mapi (fun i v -> Printf.sprintf "%.1f,%.1f" (x i) (y v)) vs
        |> String.concat " "
      in
      Printf.sprintf
        "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\"><polyline points=\"%s\" \
         fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\"/></svg>"
        w h w h pts

type row = {
  row_name : string;
  row_kind : string;  (* "rate", "gauge", "p99", ... *)
  row_value : string; (* latest reading, pre-formatted *)
  row_series : float list;
}

type alert_row = {
  al_rule : string;
  al_state : string; (* "ok" | "firing" *)
  al_value : string;
}

let render ~window_s ~step_s ~samples ~rows ~alerts =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "<!DOCTYPE html><html><head><meta charset=\"utf-8\">";
  (* Refresh at the sampling cadence, floored at 1 s so a fast test
     sampler does not make browsers thrash. *)
  let refresh = int_of_float (Float.max 1.0 step_s) in
  add (Printf.sprintf "<meta http-equiv=\"refresh\" content=\"%d\">" refresh);
  add "<title>solarstorm dashboard</title><style>";
  add
    "body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}\
     table{border-collapse:collapse}td,th{padding:4px 12px;text-align:left;\
     border-bottom:1px solid #ddd}h1{font-size:1.2em}.firing{color:#c53030;\
     font-weight:bold}.ok{color:#2f855a}.muted{color:#888}";
  add "</style></head><body>";
  add "<h1>solarstorm self-monitoring</h1>";
  add
    (Printf.sprintf
       "<p class=\"muted\">window %gs &middot; step %gs &middot; %d samples</p>"
       window_s step_s samples);
  if alerts <> [] then begin
    add "<h2>alerts</h2><table><tr><th>rule</th><th>state</th><th>value</th></tr>";
    List.iter
      (fun a ->
        add
          (Printf.sprintf "<tr><td>%s</td><td class=\"%s\">%s</td><td>%s</td></tr>"
             (escape a.al_rule) (escape a.al_state) (escape a.al_state)
             (escape a.al_value)))
      alerts;
    add "</table>"
  end;
  add "<h2>series</h2><table><tr><th>metric</th><th>kind</th><th>now</th><th></th></tr>";
  if rows = [] then add "<tr><td colspan=\"4\" class=\"muted\">no samples yet</td></tr>";
  List.iter
    (fun r ->
      add
        (Printf.sprintf "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
           (escape r.row_name) (escape r.row_kind) (escape r.row_value)
           (spark_svg r.row_series)))
    rows;
  add "</table></body></html>";
  Buffer.contents buf
