(** Request parameters, canonical cache keys, and the shared
    result-to-JSON encoders behind both [solarstorm serve] and the CLI's
    [--json] output.

    One compute + encode path serves both front ends, so an HTTP
    response body is byte-identical to [solarstorm <cmd> --json] for the
    same parameters — the parity the loopback tests and [check.sh]
    assert.  Bodies are compact {!Obs.Json} documents terminated by one
    newline.

    Process-wide reuse: dataset builds go through {!Datasets.Cache},
    compiled {!Stormsim.Plan}s are memoized here per canonical
    [(network, model, spacing)] key, and whole response bodies live in
    a lock-striped LRU ({!Lru.Sharded}) keyed by the canonical request
    ({!sim_key} & friends) — a repeated request is answered
    byte-identically without re-running trials.  Every entry point is
    safe to call from any number of worker domains concurrently: the
    result cache is sharded, the plan memo is mutex-single-flighted,
    and the per-request cache outcome is domain-local. *)

type network = Stormsim.Sweep.network_id = Submarine | Intertubes | Itu
(** Re-export: the core sweep engine owns the network vocabulary. *)

val network_to_string : network -> string

val network_of_string : string -> (network, string) result

type sim_params = Stormsim.Sweep.cell = {
  network : network;
  model : Stormsim.Failure_model.t;
  spacing_km : float;
  itu_scale : float;  (** only meaningful for {!Itu} *)
  seed : int;
  trials : int;
}
(** A simulate request is exactly one sweep cell, so the record is the
    same type — the canonical keys ({!sim_key},
    {!Stormsim.Sweep.plan_key}) stay in lockstep by construction. *)

val sim_defaults : sim_params
(** The CLI's defaults: submarine, uniform 0.01, 150 km, scale 0.3,
    seed {!Datasets.default_seed}, 10 trials. *)

val sim_of_json : sim_params -> Obs.Json.t -> (sim_params, string) result
(** Overlay a JSON object's fields ([network], [model], [spacing_km],
    [itu_scale], [seed], [trials]) over the given base parameters.
    Strict: unknown fields, wrong types and out-of-range values are
    [Error] (the service turns them into a 400). *)

val sim_key : sim_params -> string
(** Canonical cache key; the ITU scale is normalized out for non-ITU
    networks so equivalent requests share one entry. *)

val simulate_body : sim_params -> string
(** Compile (or reuse) the plan, run the trials, encode. *)

type scenario_source =
  | Event of string  (** {!Spaceweather.Storm_catalog} lookup *)
  | Speed of float  (** custom CME launch speed, km/s *)

type scenario_params = {
  source : scenario_source;
  sc_seed : int;  (** dataset seed *)
  sc_trials : int;
  physical : bool;  (** also run the GIC-physical model *)
}

val scenario_defaults : scenario_params

val scenario_of_json :
  scenario_params -> Obs.Json.t -> (scenario_params, string) result
(** Fields: [event], [speed_km_s] (overrides [event]), [seed], [trials],
    [physical]. *)

val scenario_key : scenario_params -> string

val scenario_body : scenario_params -> (string, string) result
(** [Error] when the event name is not in the catalog. *)

type countries_params = { co_seed : int; co_trials : int }

val countries_defaults : countries_params

val countries_of_json :
  countries_params -> Obs.Json.t -> (countries_params, string) result

val countries_key : countries_params -> string

val countries_body : countries_params -> string

val sweep_axes_of_json : Obs.Json.t -> (Stormsim.Sweep.axis list, string) result
(** Decode a [POST /sweep] grid: a JSON object mapping axis keys to one
    value (pinning the parameter) or an array of values (one grid
    dimension), field order = axis order.  Strict like the other
    decoders: unknown keys, wrong types and out-of-range values are
    [Error].  An empty object is zero axes (one default cell). *)

val params_of_body :
  base:'p -> of_json:('p -> Obs.Json.t -> ('p, string) result) -> string ->
  ('p, string) result
(** Decode a request body: empty/whitespace bodies mean "all defaults",
    anything else must parse as JSON and overlay cleanly. *)

val with_cache : key:string -> (unit -> (string, string) result) -> (string, string) result
(** Serve [key] from the sharded LRU result cache, or compute, cache
    (successes only) and count.  Hits/misses/evictions land on the
    [server.cache.*] metrics (occupancy on the [server.cache.entries]
    gauge); a hit returns the stored bytes without running any trial.
    Safe from any domain — the counters are domain-sharded and exact,
    the cache lock-striped. *)

val take_cache_outcome : unit -> [ `Hit | `Miss ] option
(** Outcome of the calling domain's most recent {!with_cache} call,
    cleared on read — each worker reads it once per request for the
    access log ([None] when the request never consulted the cache,
    e.g. [/healthz]).  Domain-local, so concurrent workers never see
    each other's outcomes. *)

val set_cache_capacity : ?shards:int -> int -> unit
(** Replace the result cache with an empty one of the given capacity
    (the [--cache-entries] flag) and stripe count (default
    {!Lru.Sharded.default_shards}; tests that assert exact eviction
    order pass [~shards:1]).  Call before worker domains are running —
    the swap itself is not synchronized.
    @raise Invalid_argument if the capacity is negative. *)

val cache_length : unit -> int

val cache_capacity : unit -> int

val cache_shards : unit -> int

val reset : unit -> unit
(** Drop the result cache and the compiled-plan memo (tests). *)
