(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every stochastic component (dataset synthesis, Monte-Carlo failure
    trials) draws from this generator so that experiments are reproducible
    bit-for-bit from a seed, independent of the OCaml stdlib [Random]
    state and of evaluation order across modules. *)

type t

val create : int -> t
(** Generator seeded from an integer. *)

val split : t -> t
(** An independent generator derived from (and advancing) the parent.
    Used to give each Monte-Carlo trial / dataset component its own
    stream. *)

val split_ith : t -> int -> t
(** [split_ith master i] is exactly the generator the (i+1)-th
    consecutive [split master] would produce, computed {e without}
    mutating [master] — a pure function of the master state and the
    index, so parallel workers can derive any trial's stream directly
    instead of pre-splitting an array of [trials] generators.
    Counts no draw against [rng.draws]; batch drivers account for their
    splits with {!note_draws}.  @raise Invalid_argument if [i < 0]. *)

val note_draws : int -> unit
(** Credit [n] draws to the [rng.draws] counter in one batched add.
    Kernels drawing through {!Raw} call this once per chunk so counter
    totals stay exactly equal to the per-draw-counted equivalent. *)

module Raw : sig
  (** Uncounted draws, bit-identical to their counted counterparts (same
      state advance, same output) but skipping the per-draw metrics
      increment — for hot loops that settle the count per batch with
      {!note_draws}. *)

  val next_int64 : t -> int64

  val next_float53 : t -> float
  (** 53 uniform bits in [[0, 1)] — the primitive behind [bernoulli],
      [float] and friends. *)

  val bernoulli : t -> p:float -> bool
  (** Same draw pattern (one [next_float53]) and results as
      {!val:bernoulli}. *)

  val fill_bernoulli : t -> float array -> set:(int -> unit) -> unit
  (** [fill_bernoulli t probs ~set] makes one raw float53 draw per entry
      of [probs] — the exact stream [Array.length probs] successive
      {!bernoulli} calls would consume — and calls [set i] where draw
      [i] lands below [probs.(i)].  Probabilities must already be in
      [[0, 1]] (no clamping).  The loop keeps the generator state in
      unboxed locals, so the sweep itself allocates nothing. *)
end

val copy : t -> t

val int : t -> int -> int
(** [int t bound] in [[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] inclusive of both bounds.  @raise Invalid_argument if
    [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] uniform in [[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] uniform in [[lo, hi)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** True with probability [p] (clamped to [[0, 1]]). *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp (normal mu sigma)]. *)

val exponential : t -> rate:float -> float
(** @raise Invalid_argument if [rate <= 0.]. *)

val pareto : t -> xmin:float -> alpha:float -> float
(** Pareto-distributed value ≥ xmin with density exponent alpha.
    @raise Invalid_argument if [xmin <= 0.] or [alpha <= 0.]. *)

val choice : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val weighted_choice : t -> ('a * float) array -> 'a
(** Weights must be non-negative and not all zero.  An entry with weight
    [0.] is never selected — including when float rounding pushes the
    uniform draw past the prefix sums and the scan falls through (the
    fallback skips trailing zero-weight entries).
    @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_without_replacement : t -> 'a array -> k:int -> 'a list
(** [k] distinct elements.  @raise Invalid_argument if [k] exceeds the
    array length or is negative. *)
