type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draws = Obs.Metrics.counter "rng.draws"

(* Uncounted draws for hot kernels.  [next_int64] below pays a sharded
   atomic increment on *every* draw, which serialized exactly the loop
   the parallel trial engine exists to parallelize.  The [Raw] stream is
   bit-identical to the counted one — same state advance, same mix — so
   a kernel can draw raw and settle the books once per batch with
   [note_draws], keeping counter totals exact. *)
module Raw = struct
  let next_int64 t =
    t.state <- Int64.add t.state golden_gamma;
    mix t.state

  let next_float53 t =
    (* 53 random bits into [0, 1). *)
    let bits = Int64.shift_right_logical (next_int64 t) 11 in
    Int64.to_float bits *. (1.0 /. 9007199254740992.0)

  let bernoulli t ~p =
    let p = Float.max 0.0 (Float.min 1.0 p) in
    next_float53 t < p

  (* Batched bernoulli sweep: one raw float53 draw per entry of [probs],
     calling [set i] exactly where draw [i] lands below [probs.(i)].
     Draw [i]'s state is [base + (i+1)·gamma] — a pure function of the
     base state and the index — so the loop never stores to [t.state]
     until the end.  Per-draw the generic path allocates ~10 words of
     Int64 boxes (the state store plus the cross-call results); here
     every intermediate is a local the compiler keeps unboxed, making
     the sweep allocation-free.  The stream is bit-identical to [n]
     successive [bernoulli] calls with in-range probabilities. *)
  let fill_bernoulli t probs ~set =
    let n = Array.length probs in
    let s0 = t.state in
    for i = 0 to n - 1 do
      (* [mix], hand-inlined: a non-inlined call boxes its Int64 argument
         and result, which is exactly the allocation this loop exists to
         avoid. *)
      let z = Int64.add s0 (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      let u =
        Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)
      in
      if u < Array.unsafe_get probs i then set i
    done;
    t.state <- Int64.add s0 (Int64.mul (Int64.of_int n) golden_gamma)
end

let note_draws n = Obs.Metrics.add draws n

let next_int64 t =
  Obs.Metrics.incr draws;
  Raw.next_int64 t

let create seed = { state = mix (Int64.of_int seed) }

let split t = { state = next_int64 t }

(* [split_ith master i] is the generator the (i+1)-th [split master]
   call would return, computed without mutating [master]: [split]
   advances the parent by one gamma step per call and mixes, so the i-th
   child's state is [mix (state + (i+1)·gamma)] — a pure function of the
   master state and the index.  The parallel trial engine uses this to
   hand trial [i] its stream with no pre-split pass, no per-trial heap
   record, and no draw-counter traffic (the driver settles the count
   with [note_draws]). *)
let split_ith t i =
  if i < 0 then invalid_arg "Rng.split_ith: i < 0";
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) }

let copy t = { state = t.state }

let next_float53 t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection-free for our purposes: bounds here are far below 2^53. *)
  int_of_float (next_float53 t *. float_of_int bound)

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound = next_float53 t *. bound

let uniform t lo hi = lo +. (next_float53 t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  next_float53 t < p

let normal t ~mu ~sigma =
  let rec draw () =
    let u1 = next_float53 t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = next_float53 t in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate <= 0";
  let rec draw () =
    let u = next_float53 t in
    if u <= 1e-300 then draw () else -.log u /. rate
  in
  draw ()

let pareto t ~xmin ~alpha =
  if xmin <= 0.0 then invalid_arg "Rng.pareto: xmin <= 0";
  if alpha <= 0.0 then invalid_arg "Rng.pareto: alpha <= 0";
  let rec draw () =
    let u = next_float53 t in
    if u <= 1e-300 then draw () else xmin /. (u ** (1.0 /. alpha))
  in
  draw ()

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let weighted_choice t a =
  if Array.length a = 0 then invalid_arg "Rng.weighted_choice: empty array";
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Rng.weighted_choice: negative weight";
        acc +. w)
      0.0 a
  in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: all-zero weights";
  (* Float rounding can land [x] at or past the running prefix sums (the
     fold above and the incremental sums below associate differently), so
     the scan may fall through every [x < acc] test.  The fallback must
     then pick the last {e positive}-weight entry: returning the last
     element unconditionally could select a weight-0.0 entry. *)
  let last_positive =
    let rec find i = if snd a.(i) > 0.0 then i else find (i - 1) in
    find (Array.length a - 1)
  in
  let x = float t total in
  let rec scan i acc =
    if i = last_positive then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if x < acc then fst a.(i) else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t a ~k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement: bad k";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  List.init k (fun i -> a.(idx.(i)))
