let available_jobs () = Domain.recommended_domain_count ()

(* The process-wide default: an explicit [set_default_jobs] (the CLI
   [--jobs] flag) wins over the SOLARSTORM_JOBS environment variable,
   which wins over sequential.  Atomic so a worker domain reading the
   default mid-run is not a data race. *)
let override = Atomic.make 0 (* 0 = unset *)

let env_jobs () =
  match Sys.getenv_opt "SOLARSTORM_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j > 0 -> Some j
      | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | j when j > 0 -> j
  | _ -> Option.value ~default:1 (env_jobs ())

let set_default_jobs j =
  if j <= 0 then invalid_arg "Exec.set_default_jobs: jobs <= 0";
  Atomic.set override j

let par_sections = Obs.Metrics.counter "exec.parallel_sections"
let domains_spawned = Obs.Metrics.counter "exec.domains_spawned"

let parallel_for ?chunk ~jobs ~n body =
  if jobs <= 0 then invalid_arg "Exec.parallel_for: jobs <= 0";
  if n < 0 then invalid_arg "Exec.parallel_for: n < 0";
  if n = 0 then ()
  else if jobs = 1 || n = 1 then body ~lo:0 ~hi:n
  else begin
    let jobs = Int.min jobs n in
    let chunk =
      match chunk with
      | Some c ->
          if c <= 0 then invalid_arg "Exec.parallel_for: chunk <= 0";
          c
      | None -> Int.max 1 (n / (8 * jobs))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let cursor = Atomic.make 0 in
    (* Trace context is domain-local (see {!Obs.Span.with_trace}), so a
       freshly spawned domain starts without the caller's request id.
       Capture it here and re-install it in every spawned worker so one
       request's [exec.worker]/[mc.trial] spans stay attributable when N
       requests run plans concurrently on N server domains. *)
    let trace = Obs.Span.current_trace () in
    let worker () =
      (* The span makes every participating domain visible to the
         profiler (per-domain rings) even when work-stealing leaves a
         domain empty-handed; when obs is off it is a single branch. *)
      Obs.Span.with_ ~name:"exec.worker" @@ fun () ->
      let rec steal () =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < nchunks then begin
          let lo = c * chunk in
          body ~lo ~hi:(Int.min n (lo + chunk));
          steal ()
        end
      in
      steal ()
    in
    Obs.Metrics.incr par_sections;
    Obs.Metrics.add domains_spawned (jobs - 1);
    let spawned_worker () =
      if trace = "" then worker () else Obs.Span.with_trace trace worker
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn spawned_worker) in
    (* The calling domain is worker [jobs - 1]; hold its exception until
       every spawned domain is joined so no domain outlives the call. *)
    let first_exn = ref None in
    let note = function
      | None -> ()
      | Some _ as e -> if !first_exn = None then first_exn := e
    in
    note (try worker (); None with e -> Some e);
    Array.iter
      (fun d -> note (try Domain.join d; None with e -> Some e))
      domains;
    match !first_exn with None -> () | Some e -> raise e
  end
