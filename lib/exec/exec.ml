let available_jobs () = Domain.recommended_domain_count ()

(* The process-wide default: an explicit [set_default_jobs] (the CLI
   [--jobs] flag) wins over the SOLARSTORM_JOBS environment variable,
   which wins over sequential.  Atomic so a worker domain reading the
   default mid-run is not a data race. *)
let override = Atomic.make 0 (* 0 = unset *)

let env_jobs () =
  match Sys.getenv_opt "SOLARSTORM_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j > 0 -> Some j
      | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | j when j > 0 -> j
  | _ -> Option.value ~default:1 (env_jobs ())

let set_default_jobs j =
  if j <= 0 then invalid_arg "Exec.set_default_jobs: jobs <= 0";
  Atomic.set override j

let par_sections = Obs.Metrics.counter "exec.parallel_sections"
let domains_spawned = Obs.Metrics.counter "exec.domains_spawned"

(* --- Persistent worker pool -------------------------------------------

   Spawning a domain costs a runtime handshake plus fresh minor heap —
   hundreds of microseconds — which the old spawn-per-call design paid
   [jobs - 1] times per parallel section.  On the ~20 ms trial kernel
   that fixed cost (and the matching join latency) made 4 domains a
   *loss*.  Workers are now spawned lazily, once, and kept for the life
   of the process.

   Shape: one global mutex guards the pool bookkeeping (open job list,
   helper counts, idle count, shutdown flag).  A parallel section is a
   [job] record published onto [open_jobs]; idle workers scan the list
   for a job that still has unclaimed chunks and wants more helpers,
   attach, and run the same chunked work-stealing loop as the caller.
   The *caller always participates* — helpers are strictly optional —
   so a section completes even when every pool worker is busy on other
   jobs, and a nested [parallel_for] from inside a body can never
   deadlock waiting for workers that are waiting for it.

   Completion: [remaining] counts unfinished chunks; the caller waits on
   [done_cond] until its job has zero attached helpers and either zero
   remaining chunks or a recorded failure, so no [body] invocation ever
   outlives the call that issued it.  The first exception wins the
   [failed] slot (CAS) and stops further chunk claims; the calling
   domain's own exception still takes precedence when re-raising,
   matching the spawn-per-call semantics.

   Shutdown: a [Stdlib.at_exit] hook (registered at first spawn) flips
   [stopping], wakes the pool and joins every worker, so the process
   never exits with runnable domains leaked. *)

type job = {
  chunk : int;
  n : int;
  nchunks : int;
  body : lo:int -> hi:int -> unit;
  trace : string; (* caller's trace context, re-installed in helpers *)
  cursor : int Atomic.t; (* next chunk index to claim *)
  remaining : int Atomic.t; (* chunks not yet completed *)
  failed : exn option Atomic.t; (* first exception from any participant *)
  mutable helpers : int; (* pool domains currently attached (lock) *)
  helpers_wanted : int;
}

let lock = Mutex.create ()
let work_cond = Condition.create () (* workers: work published / shutdown *)
let done_cond = Condition.create () (* callers: a helper detached *)
let open_jobs : job list ref = ref []
let pool : unit Domain.t list ref = ref []
let spawned = ref 0
let idle = ref 0
let stopping = ref false

(* Far below the runtime's ~128-domain ceiling even with a multi-worker
   [solarstorm serve] pool alongside. *)
let max_pool = 30

let pool_size () =
  Mutex.lock lock;
  let s = !spawned in
  Mutex.unlock lock;
  s

(* Run the stealing loop of [job] on the current domain.  Returns the
   exception this participant's body raised, if any, after recording it
   in [job.failed] (first writer wins) so other participants stop
   claiming chunks. *)
let execute job =
  let steal_all () =
    (* The span makes every participating domain visible to the profiler
       (per-domain rings) even when work-stealing leaves a domain
       empty-handed; when obs is off it is a single branch. *)
    Obs.Span.with_ ~name:"exec.worker" @@ fun () ->
    let rec steal () =
      if Atomic.get job.failed = None then begin
        let c = Atomic.fetch_and_add job.cursor 1 in
        if c < job.nchunks then begin
          let lo = c * job.chunk in
          job.body ~lo ~hi:(Int.min job.n (lo + job.chunk));
          ignore (Atomic.fetch_and_add job.remaining (-1));
          steal ()
        end
      end
    in
    steal ()
  in
  let run () =
    (* Trace context is domain-local (see {!Obs.Span.with_trace}), so a
       pool worker picking up this job does not carry the caller's
       request id.  Re-install it so one request's [exec.worker] /
       [mc.trial] spans stay attributable when N requests run plans
       concurrently on N server domains. *)
    if job.trace = "" then steal_all () else Obs.Span.with_trace job.trace steal_all
  in
  try
    run ();
    None
  with e ->
    ignore (Atomic.compare_and_set job.failed None (Some e));
    Some e

let attachable j =
  j.helpers < j.helpers_wanted
  && Atomic.get j.failed = None
  && Atomic.get j.cursor < j.nchunks

let rec worker_main () =
  Mutex.lock lock;
  let job =
    let rec get () =
      if !stopping then None
      else
        match List.find_opt attachable !open_jobs with
        | Some j ->
            j.helpers <- j.helpers + 1;
            Some j
        | None ->
            incr idle;
            Condition.wait work_cond lock;
            decr idle;
            get ()
    in
    get ()
  in
  Mutex.unlock lock;
  match job with
  | None -> () (* shutdown *)
  | Some j ->
      ignore (execute j : exn option);
      Mutex.lock lock;
      j.helpers <- j.helpers - 1;
      Condition.broadcast done_cond;
      Mutex.unlock lock;
      worker_main ()

let shutdown_pool () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast work_cond;
  let ds = !pool in
  pool := [];
  Mutex.unlock lock;
  List.iter Domain.join ds

let at_exit_registered = ref false (* guarded by [lock] *)

(* Call with [lock] held. *)
let spawn_worker () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit shutdown_pool
  end;
  incr spawned;
  Obs.Metrics.incr domains_spawned;
  pool := Domain.spawn worker_main :: !pool

(* Call with [lock] held: grow the pool so [wanted] helpers could attach,
   counting currently idle workers as available and respecting the cap.
   Busy workers are not counted — two concurrent sections then share the
   pool rather than doubling it, which is fine because helpers are
   optional. *)
let ensure_helpers wanted =
  let shortfall = Int.min (wanted - !idle) (max_pool - !spawned) in
  for _ = 1 to shortfall do
    spawn_worker ()
  done

let parallel_for ?chunk ~jobs ~n body =
  if jobs <= 0 then invalid_arg "Exec.parallel_for: jobs <= 0";
  if n < 0 then invalid_arg "Exec.parallel_for: n < 0";
  if n = 0 then ()
  else if jobs = 1 || n = 1 then body ~lo:0 ~hi:n
  else begin
    let jobs = Int.min jobs n in
    let chunk =
      match chunk with
      | Some c ->
          if c <= 0 then invalid_arg "Exec.parallel_for: chunk <= 0";
          c
      | None -> Int.max 1 (n / (8 * jobs))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let job =
      {
        chunk;
        n;
        nchunks;
        body;
        trace = Obs.Span.current_trace ();
        cursor = Atomic.make 0;
        remaining = Atomic.make nchunks;
        failed = Atomic.make None;
        helpers = 0;
        helpers_wanted = jobs - 1;
      }
    in
    Obs.Metrics.incr par_sections;
    Mutex.lock lock;
    (* FIFO: earlier sections get first pick of idle workers. *)
    open_jobs := !open_jobs @ [ job ];
    ensure_helpers (jobs - 1);
    Condition.broadcast work_cond;
    Mutex.unlock lock;
    let caller_exn = execute job in
    Mutex.lock lock;
    while
      not (job.helpers = 0 && (Atomic.get job.remaining = 0 || Atomic.get job.failed <> None))
    do
      Condition.wait done_cond lock
    done;
    open_jobs := List.filter (fun j -> j != job) !open_jobs;
    Mutex.unlock lock;
    match caller_exn with
    | Some e -> raise e
    | None -> ( match Atomic.get job.failed with Some e -> raise e | None -> ())
  end
