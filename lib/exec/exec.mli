(** Persistent Domain pool for embarrassingly-parallel loops.

    OCaml 5 gives us shared-memory parallelism through [Domain]s; this
    module wraps the one pattern the simulator needs — run a counted
    loop across N domains — behind a deterministic, dependency-free
    interface.  Work distribution is {e chunked work-stealing}: the index
    range [[0, n)] is cut into fixed-size chunks and workers repeatedly
    claim the next unclaimed chunk off a shared [Atomic] cursor, so an
    unlucky domain stuck with slow chunks never strands the rest of the
    range.  Determinism of {e results} is the caller's job: give each
    index its own pre-seeded RNG and write to index-owned slots (see
    {!Plan.run_trials_par} for the canonical use).

    Worker domains are {e pooled}: spawned lazily on the first section
    that wants them, then reused by every later [parallel_for] from any
    domain — spawning per call cost hundreds of microseconds × [jobs-1]
    per section, which dominated (and inverted) the speedup on ~20 ms
    kernels.  The pool grows on demand up to an internal cap, is shared
    by concurrent sections (e.g. several [solarstorm serve] worker
    domains running plans at once), and is joined by a [Stdlib.at_exit]
    hook so the process never exits with runnable domains leaked.  The
    calling domain always participates in its own section, so a section
    completes even with zero free pool workers and nested calls cannot
    deadlock; helpers are strictly optional accelerators.

    Observability: each parallel section counts on
    [exec.parallel_sections]; [exec.domains_spawned] counts {e actual}
    domain spawns, so under the pool it rises to the high-water helper
    count and then stays flat — a cheap reuse probe for tests.  Every
    participating domain — pooled or calling — runs its stealing loop
    under an ["exec.worker"] span, so a profile ([solarstorm --profile])
    shows one trace row per active domain even when work-stealing left a
    domain without a chunk.  The caller's trace context
    ({!Obs.Span.current_trace}, domain-local) is captured at section
    start and re-installed in every helper, so a request id set by the
    serving layer follows the work onto pool domains.  All of it is
    off-by-default obs, one branch when disabled. *)

val available_jobs : unit -> int
(** What the hardware offers: [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The job count used when a caller does not pass [~jobs]: the last
    {!set_default_jobs} value if any, else the [SOLARSTORM_JOBS]
    environment variable when it parses as a positive integer, else [1]
    (sequential — byte-compatible with the pre-parallel engine by
    construction, and the right default for reproducible CI). *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs}; the [--jobs] CLI flag lands
    here once at startup so every consumer deep in the figure pipeline
    picks it up without threading a parameter through each call.
    @raise Invalid_argument if the count is [<= 0]. *)

val pool_size : unit -> int
(** Worker domains currently alive in the pool.  Starts at 0, grows as
    sections request helpers, never exceeds the internal cap, and — the
    property tests lean on — stays flat across repeated sections of the
    same width. *)

val parallel_for : ?chunk:int -> jobs:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for ~jobs ~n body] covers the index range [[0, n)] with
    disjoint [body ~lo ~hi] calls (half-open ranges), using the calling
    domain plus up to [jobs - 1] pool helpers.  Each range is visited
    exactly once; ranges are claimed dynamically in chunks of [chunk]
    indices (default: [n / (8 × jobs)], at least 1 — small enough to
    balance load, large enough to amortize the claim).

    With [jobs <= 1] (or [n <= 1]) the body runs inline on the calling
    domain as a single [body ~lo:0 ~hi:n] call — no pool interaction, no
    atomic is touched.

    The call returns only after every participating domain has left the
    section, even when [body] raises; the first exception (calling
    domain's first, then helper order) is re-raised, and a failure stops
    further chunk claims.  [body] must be safe to run concurrently with
    itself on disjoint ranges, and may itself call [parallel_for]
    (nested sections share the pool; the inner caller participates, so
    progress is guaranteed).

    @raise Invalid_argument if [jobs <= 0] or [n < 0]. *)
