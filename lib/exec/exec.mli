(** Tiny Domain-based execution pool for embarrassingly-parallel loops.

    OCaml 5 gives us shared-memory parallelism through [Domain]s; this
    module wraps the one pattern the simulator needs — run a counted
    loop across N domains — behind a deterministic, dependency-free
    interface.  Work distribution is {e chunked work-stealing}: the index
    range [[0, n)] is cut into fixed-size chunks and workers repeatedly
    claim the next unclaimed chunk off a shared [Atomic] cursor, so an
    unlucky domain stuck with slow chunks never strands the rest of the
    range.  Determinism of {e results} is the caller's job: give each
    index its own pre-seeded RNG and write to index-owned slots (see
    {!Plan.run_trials_par} for the canonical use).

    Domains are spawned per call and joined before the call returns —
    there is no persistent pool to shut down, no daemon domain to leak,
    and a raising [body] still leaves the process with only the calling
    domain running.

    Observability: each parallel section counts on
    [exec.parallel_sections] (and [exec.domains_spawned] adds the
    domains it spawned), and every participating domain — spawned or
    calling — runs its stealing loop under an ["exec.worker"] span, so a
    profile ([solarstorm --profile]) shows one trace row per active
    domain even when work-stealing left a domain without a chunk.  The
    caller's trace context ({!Obs.Span.current_trace}, domain-local) is
    captured at section start and re-installed in every spawned domain,
    so a request id set by the serving layer follows the work onto
    worker domains.  All of it is off-by-default obs, one branch when
    disabled. *)

val available_jobs : unit -> int
(** What the hardware offers: [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The job count used when a caller does not pass [~jobs]: the last
    {!set_default_jobs} value if any, else the [SOLARSTORM_JOBS]
    environment variable when it parses as a positive integer, else [1]
    (sequential — byte-compatible with the pre-parallel engine by
    construction, and the right default for reproducible CI). *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs}; the [--jobs] CLI flag lands
    here once at startup so every consumer deep in the figure pipeline
    picks it up without threading a parameter through each call.
    @raise Invalid_argument if the count is [<= 0]. *)

val parallel_for : ?chunk:int -> jobs:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for ~jobs ~n body] covers the index range [[0, n)] with
    disjoint [body ~lo ~hi] calls (half-open ranges), using the calling
    domain plus [jobs - 1] spawned domains.  Each range is visited
    exactly once; ranges are claimed dynamically in chunks of [chunk]
    indices (default: [n / (8 × jobs)], at least 1 — small enough to
    balance load, large enough to amortize the claim).

    With [jobs <= 1] (or [n <= 1]) the body runs inline on the calling
    domain as a single [body ~lo:0 ~hi:n] call — no domain is spawned, no
    atomic is touched.

    All spawned domains are joined before the call returns, even when
    [body] raises; the first exception (calling domain's first, then
    spawn order) is re-raised after the join.  [body] must be safe to run
    concurrently with itself on disjoint ranges.

    @raise Invalid_argument if [jobs <= 0] or [n < 0]. *)
