(** Windowed time-series over the cumulative metrics registry.

    A [t] is a fixed-size ring of {!Metrics.snapshot}s taken on a fixed
    step (a sampler calls {!sample} once per step; one-shot consumers
    may call it on demand).  Windowed figures are derived at query time
    from the stored cumulative samples:

    - counters → per-step deltas and rates ({!rate_series},
      {!windowed_rate});
    - histograms → per-step bucket deltas fed to {!Metrics.quantile}
      for windowed p50/p95/p99 ({!quantile_series},
      {!windowed_quantile});
    - gauges → read as stored ({!gauge_series}).

    Deltas are clamped at zero, so a counter reset mid-window reads as
    one empty step instead of a huge negative rate; window totals sum
    the clamped per-step deltas rather than subtracting endpoints.

    Domain-safe: the ring is mutex-guarded, so one sampler domain and
    any number of querying domains (the /varz handler runs on server
    workers) can share a [t].  Queries never block the metrics hot
    path — they read frozen snapshots. *)

type t

val create : ?clock:Clock.t -> ?step_ns:int64 -> ?retention:int -> unit -> t
(** [create ()] — a ring of [retention] slots (default 600) intended to
    be sampled every [step_ns] (default 1 s).  [step_ns] is advisory
    metadata for consumers ({!step_ns}); timestamps always come from
    [clock] (default {!Clock.monotonic}) at {!record} time, so an
    irregular sampler degrades rates gracefully instead of lying.
    @raise Invalid_argument if [step_ns <= 0] or [retention < 2]. *)

val step_ns : t -> int64
val retention : t -> int

val length : t -> int
(** Samples currently stored (caps at [retention]). *)

val sample : t -> unit
(** Freeze {!Metrics.snapshot}[ ()] into the ring now. *)

val record : t -> Metrics.snapshot -> unit
(** Store an arbitrary snapshot (timestamped from the clock) — the
    injection point for tests feeding synthetic registries. *)

val latest : t -> (int64 * Metrics.snapshot) option
(** Newest stored sample, as [(ts_ns, snapshot)]. *)

type point = { p_ts_ns : int64; p_v : float }

val rate_series : t -> window_ns:int64 -> string -> point list
(** Per-step rates (clamped delta / step seconds) of a counter over the
    window ending at the newest sample, oldest first.  Steps where the
    metric is absent on either side are skipped; empty with fewer than
    two samples. *)

val gauge_series : t -> window_ns:int64 -> string -> point list

val quantile_series : t -> window_ns:int64 -> q:float -> string -> point list
(** Per-step windowed quantile of a histogram: each point estimates [q]
    over that step's bucket deltas alone.  Steps with no new
    observations yield no point. *)

val windowed_rate : t -> window_ns:int64 -> string -> float option
(** Counter rate over the whole window: clamped per-step deltas summed,
    divided by the sampled span.  [None] without at least two samples
    or when the metric is not a counter in the newest snapshot. *)

val windowed_quantile : t -> window_ns:int64 -> q:float -> string -> float option
(** [q]-quantile over the window's accumulated bucket deltas via
    {!Metrics.quantile}.  [None] without two samples, when the metric
    is not a histogram, or when the window saw no observations. *)

val windowed_count : t -> window_ns:int64 -> string -> int option
(** Observations a histogram recorded inside the window (sum of clamped
    bucket deltas). *)
