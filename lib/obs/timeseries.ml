(* Windowed self-monitoring over the cumulative metrics registry.

   The registry's counters and histograms only ever grow, which answers
   "how much since boot" but not "what is happening right now".  A
   [Timeseries.t] closes that gap without touching the hot mutation
   path: a sampler calls [sample] on a fixed step, each call freezing
   one {!Metrics.snapshot} into a ring of [retention] slots.  Every
   windowed figure is then derived at query time from the stored
   cumulative samples:

   - counters become per-step deltas (and deltas / step = rates);
   - histograms become per-step bucket deltas, which feed
     {!Metrics.quantile} for windowed p50/p95/p99;
   - gauges are read as stored.

   Deltas are clamped at zero so a counter reset (process restart
   behind a proxy, an explicit {!Metrics.reset}) reads as "nothing
   happened this step", never as a huge negative rate.  Window totals
   sum the clamped per-step deltas rather than subtracting endpoints,
   so one mid-window reset costs only the step it happened in.

   Domain-safety: the ring is written by the sampler domain and read by
   any worker domain answering /varz, so every ring access holds one
   mutex.  The lock guards slot bookkeeping only — snapshots themselves
   are immutable once stored. *)

type sample = { s_ts_ns : int64; s_snap : Metrics.snapshot }

type t = {
  step_ns : int64;
  retention : int;
  clock : Clock.t;
  ring : sample option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
  lock : Mutex.t;
}

let create ?(clock = Clock.monotonic) ?(step_ns = 1_000_000_000L) ?(retention = 600) () =
  if Int64.compare step_ns 0L <= 0 then invalid_arg "Obs.Timeseries.create: step_ns <= 0";
  if retention < 2 then invalid_arg "Obs.Timeseries.create: retention < 2";
  {
    step_ns;
    retention;
    clock;
    ring = Array.make retention None;
    head = 0;
    count = 0;
    lock = Mutex.create ();
  }

let step_ns t = t.step_ns
let retention t = t.retention

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> t.count)

let record t snap =
  let s = { s_ts_ns = t.clock (); s_snap = snap } in
  locked t @@ fun () ->
  t.ring.(t.head) <- Some s;
  t.head <- (t.head + 1) mod t.retention;
  if t.count < t.retention then t.count <- t.count + 1

let sample t = record t (Metrics.snapshot ())

(* Oldest-first copy of the stored samples, taken under the lock. *)
let all t =
  locked t @@ fun () ->
  List.init t.count (fun i ->
      match t.ring.((t.head - t.count + i + (2 * t.retention)) mod t.retention) with
      | Some s -> s
      | None -> assert false (* count never exceeds filled slots *))

let latest t =
  match List.rev (all t) with
  | [] -> None
  | s :: _ -> Some (s.s_ts_ns, s.s_snap)

(* The samples covering a window ending at the newest sample: everything
   newer than [newest - window] plus one baseline sample at or before
   the window edge (deltas need a "before" point).  With no baseline old
   enough, the oldest stored sample serves — the window is then simply
   shorter than asked, which /varz reports via its sample count. *)
let window_samples t ~window_ns =
  match List.rev (all t) with
  | [] -> []
  | newest :: _ as rev ->
      let edge = Int64.sub newest.s_ts_ns window_ns in
      let rec take acc = function
        | [] -> acc
        | s :: older ->
            if Int64.compare s.s_ts_ns edge > 0 then take (s :: acc) older
            else s :: acc (* the baseline: first sample at/past the edge *)
      in
      take [] rev

type point = { p_ts_ns : int64; p_v : float }

let counter_at snap name =
  match Metrics.find snap name with Some (Metrics.Counter n) -> Some n | _ -> None

let gauge_at snap name =
  match Metrics.find snap name with Some (Metrics.Gauge v) -> Some v | _ -> None

let histogram_at snap name =
  match Metrics.find snap name with
  | Some (Metrics.Histogram { bounds; counts; _ }) -> Some (bounds, counts)
  | _ -> None

let clamp d = if d < 0 then 0 else d

(* Fold consecutive sample pairs oldest-first. *)
let fold_pairs samples f acc =
  match samples with
  | [] | [ _ ] -> acc
  | first :: rest ->
      let acc, _ =
        List.fold_left (fun (acc, prev) cur -> (f acc ~prev ~cur, cur)) (acc, first) rest
      in
      acc

let dt_s ~prev ~cur = Int64.to_float (Int64.sub cur.s_ts_ns prev.s_ts_ns) /. 1e9

let rate_series t ~window_ns name =
  fold_pairs (window_samples t ~window_ns)
    (fun acc ~prev ~cur ->
      match (counter_at prev.s_snap name, counter_at cur.s_snap name) with
      | Some a, Some b ->
          let dt = dt_s ~prev ~cur in
          if dt <= 0.0 then acc
          else { p_ts_ns = cur.s_ts_ns; p_v = float_of_int (clamp (b - a)) /. dt } :: acc
      | _ -> acc)
    []
  |> List.rev

let gauge_series t ~window_ns name =
  List.filter_map
    (fun s ->
      match gauge_at s.s_snap name with
      | Some v -> Some { p_ts_ns = s.s_ts_ns; p_v = v }
      | None -> None)
    (window_samples t ~window_ns)

let windowed_rate t ~window_ns name =
  let samples = window_samples t ~window_ns in
  match (samples, List.rev samples) with
  | first :: _ :: _, newest :: _ ->
      let span = dt_s ~prev:first ~cur:newest in
      if span <= 0.0 then None
      else
        let total =
          fold_pairs samples
            (fun acc ~prev ~cur ->
              match (counter_at prev.s_snap name, counter_at cur.s_snap name) with
              | Some a, Some b -> acc + clamp (b - a)
              | _ -> acc)
            0
        in
        if counter_at newest.s_snap name = None then None
        else Some (float_of_int total /. span)
  | _ -> None

(* Bucket deltas between two cumulative histogram snapshots, clamped
   per slot.  [None] when shapes disagree (a histogram re-registered
   with different buckets mid-run — not expected, but never crash a
   scrape over it). *)
let bucket_delta (a : Metrics.snapshot) (b : Metrics.snapshot) name =
  match (histogram_at a name, histogram_at b name) with
  | Some (bounds_a, counts_a), Some (bounds_b, counts_b)
    when bounds_a = bounds_b && Array.length counts_a = Array.length counts_b ->
      Some
        ( bounds_b,
          Array.init (Array.length counts_b) (fun i -> clamp (counts_b.(i) - counts_a.(i)))
        )
  | _ -> None

(* Windowed histogram view: per-step clamped bucket deltas accumulated
   over the whole window. *)
let windowed_buckets t ~window_ns name =
  let samples = window_samples t ~window_ns in
  fold_pairs samples
    (fun acc ~prev ~cur ->
      match bucket_delta prev.s_snap cur.s_snap name with
      | None -> acc
      | Some (bounds, deltas) -> (
          match acc with
          | None -> Some (bounds, deltas)
          | Some (bounds0, total) when bounds0 = bounds ->
              Array.iteri (fun i d -> total.(i) <- total.(i) + d) deltas;
              Some (bounds0, total)
          | Some _ -> acc))
    None

let windowed_quantile t ~window_ns ~q name =
  match windowed_buckets t ~window_ns name with
  | None -> None
  | Some (bounds, counts) -> Metrics.quantile ~bounds ~counts q

let windowed_count t ~window_ns name =
  match windowed_buckets t ~window_ns name with
  | None -> None
  | Some (_, counts) -> Some (Array.fold_left ( + ) 0 counts)

let quantile_series t ~window_ns ~q name =
  fold_pairs (window_samples t ~window_ns)
    (fun acc ~prev ~cur ->
      match bucket_delta prev.s_snap cur.s_snap name with
      | None -> acc
      | Some (bounds, counts) -> (
          match Metrics.quantile ~bounds ~counts q with
          | Some v -> { p_ts_ns = cur.s_ts_ns; p_v = v } :: acc
          | None -> acc))
    []
  |> List.rev
