type t = unit -> int64

let monotonic () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let fake ?(start = 0L) ?(step = 1_000L) () =
  let now = ref start in
  fun () ->
    let v = !now in
    now := Int64.add v step;
    v

let manual ?(start = 0L) () =
  let now = ref start in
  ((fun () -> !now), fun ns -> now := Int64.add !now ns)
