(* Domain-safety: mutations can come from the worker domains of the
   parallel trial engine, so every mutable cell is an [Atomic].  Counters
   are additionally sharded by domain id: [rng.draws] and [plan.trials]
   are incremented once per Bernoulli draw / per trial, and a single
   contended fetch-and-add would serialize exactly the loop the domains
   exist to parallelize.  A shard is picked by hashing the domain id, so
   increments from different domains usually hit different cache lines;
   totals are the exact sum over shards (reads snapshot each shard
   atomically — int addition loses nothing). *)

let shards = 8 (* power of two: shard pick is a mask *)

type counter = { c_name : string; c_counts : int Atomic.t array }
type gauge = { g_name : string; g_value : float Atomic.t; g_set : bool Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int Atomic.t array; (* length = Array.length h_bounds + 1; last = overflow *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

type snapshot = (string * value) list

type metric = C of counter | G of gauge | H of histogram

(* Registration and snapshotting are rare; a mutex keeps the registry
   itself domain-safe without touching the mutation fast path. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let registered name make =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m

let kind_mismatch name = invalid_arg ("Obs.Metrics: " ^ name ^ " registered with another kind")

let atomic_ints n = Array.init n (fun _ -> Atomic.make 0)

let counter name =
  match registered name (fun () -> C { c_name = name; c_counts = atomic_ints shards }) with
  | C c -> c
  | _ -> kind_mismatch name

let gauge name =
  match
    registered name (fun () ->
        G { g_name = name; g_value = Atomic.make 0.0; g_set = Atomic.make false })
  with
  | G g -> g
  | _ -> kind_mismatch name

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Obs.Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Obs.Metrics.histogram: bucket bounds must increase strictly")
    bounds

let histogram name ~buckets =
  check_bounds buckets;
  match
    registered name (fun () ->
        H
          {
            h_name = name;
            h_bounds = Array.copy buckets;
            h_counts = atomic_ints (Array.length buckets + 1);
            h_sum = Atomic.make 0.0;
            h_count = Atomic.make 0;
          })
  with
  | H h ->
      if h.h_bounds <> buckets then
        invalid_arg ("Obs.Metrics: " ^ name ^ " re-registered with different buckets");
      h
  | _ -> kind_mismatch name

let enabled = Control.enabled

(* Domain ids are handed out sequentially, and with a persistent worker
   pool they are *stable* for the life of the process — masking the raw
   id would pin sequentially spawned workers to adjacent shards and make
   ids 8 apart collide forever.  Mix the id first (Fibonacci hashing:
   multiply by ⌊2⁶³/φ⌋, an odd constant, and take the top bits, which is
   where a multiply concentrates its entropy) so near-by ids land on
   unrelated shards. *)
let shard_of_id id = ((id * 0x2545F4914F6CDD1D) lsr 60) land (shards - 1)
let shard_of_domain () = shard_of_id (Domain.self () :> int)

let incr c =
  if Atomic.get Control.flag then Atomic.incr c.c_counts.(shard_of_domain ())

let add c n =
  if Atomic.get Control.flag then
    ignore (Atomic.fetch_and_add c.c_counts.(shard_of_domain ()) n)

let set g v =
  if Atomic.get Control.flag then begin
    Atomic.set g.g_value v;
    Atomic.set g.g_set true
  end

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let bucket_index bounds v =
  (* Linear scan: bucket arrays here are small (<= ~16). A value lands in
     the first bucket whose upper bound is >= v; past the last bound it
     falls into the overflow slot. *)
  let n = Array.length bounds in
  let rec scan i = if i = n then n else if v <= bounds.(i) then i else scan (i + 1) in
  scan 0

let observe h v =
  if Atomic.get Control.flag then begin
    Atomic.incr h.h_counts.(bucket_index h.h_bounds v);
    atomic_add_float h.h_sum v;
    Atomic.incr h.h_count
  end

let counter_total c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_counts

let quantile ~bounds ~counts q =
  (* Prometheus-style histogram_quantile: find the bucket holding the
     q-th rank and interpolate linearly inside it, assuming observations
     are uniform within a bucket.  [counts] is per-bucket (the snapshot
     layout), with the overflow slot last.  Estimates land in the +Inf
     bucket collapse to the last finite bound — the histogram records
     nothing about the tail beyond it. *)
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Obs.Metrics.quantile: q outside [0, 1]";
  if Array.length counts <> Array.length bounds + 1 then
    invalid_arg "Obs.Metrics.quantile: counts length must be bounds length + 1";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length bounds in
    (* First bucket whose cumulative count reaches the rank; skipping
       empty buckets (cum' only moves on non-empty ones) also keeps
       [rank = 0] out of a 0/0 interpolation. *)
    let rec locate i cum =
      if i > n then (n, cum) (* unreachable: cum reaches total by the last slot *)
      else
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && float_of_int cum' >= rank then (i, cum)
        else locate (i + 1) cum'
    in
    let i, below = locate 0 0 in
    if i = n then Some bounds.(n - 1)
    else
      let lower = if i = 0 then Float.min 0.0 bounds.(0) else bounds.(i - 1) in
      let width = bounds.(i) -. lower in
      let inside = (rank -. float_of_int below) /. float_of_int counts.(i) in
      Some (lower +. (width *. inside))
  end

let value_of = function
  | C c -> Counter (counter_total c)
  | G g -> Gauge (Atomic.get g.g_value)
  | H h ->
      Histogram
        {
          bounds = Array.copy h.h_bounds;
          counts = Array.map Atomic.get h.h_counts;
          sum = Atomic.get h.h_sum;
          count = Atomic.get h.h_count;
        }

let snapshot () =
  with_registry (fun () ->
      Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Array.iter (fun a -> Atomic.set a 0) c.c_counts
      | G g ->
          Atomic.set g.g_value 0.0;
          Atomic.set g.g_set false
      | H h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Atomic.set h.h_sum 0.0;
          Atomic.set h.h_count 0)
    registry

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y (* right-biased: the later snapshot wins *)
  | Histogram x, Histogram y ->
      if x.bounds <> y.bounds then
        invalid_arg ("Obs.Metrics.merge: " ^ name ^ " has mismatched buckets");
      Histogram
        {
          bounds = x.bounds;
          counts = Array.init (Array.length x.counts) (fun i -> x.counts.(i) + y.counts.(i));
          sum = x.sum +. y.sum;
          count = x.count + y.count;
        }
  | _ -> invalid_arg ("Obs.Metrics.merge: " ^ name ^ " has mismatched kinds")

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) a;
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt tbl name with
      | None -> Hashtbl.replace tbl name v
      | Some prev -> Hashtbl.replace tbl name (merge_value name prev v))
    b;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
