type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array; (* length = Array.length h_bounds + 1; last = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

type snapshot = (string * value) list

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registered kind name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      ignore kind;
      let m = make () in
      Hashtbl.replace registry name m;
      m

let kind_mismatch name = invalid_arg ("Obs.Metrics: " ^ name ^ " registered with another kind")

let counter name =
  match registered `C name (fun () -> C { c_name = name; c_count = 0 }) with
  | C c -> c
  | _ -> kind_mismatch name

let gauge name =
  match registered `G name (fun () -> G { g_name = name; g_value = 0.0; g_set = false }) with
  | G g -> g
  | _ -> kind_mismatch name

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Obs.Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Obs.Metrics.histogram: bucket bounds must increase strictly")
    bounds

let histogram name ~buckets =
  check_bounds buckets;
  match
    registered `H name (fun () ->
        H
          {
            h_name = name;
            h_bounds = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0;
          })
  with
  | H h ->
      if h.h_bounds <> buckets then
        invalid_arg ("Obs.Metrics: " ^ name ^ " re-registered with different buckets");
      h
  | _ -> kind_mismatch name

let enabled = Control.enabled

let incr c = if !Control.flag then c.c_count <- c.c_count + 1

let add c n = if !Control.flag then c.c_count <- c.c_count + n

let set g v =
  if !Control.flag then begin
    g.g_value <- v;
    g.g_set <- true
  end

let bucket_index bounds v =
  (* Linear scan: bucket arrays here are small (<= ~16). A value lands in
     the first bucket whose upper bound is >= v; past the last bound it
     falls into the overflow slot. *)
  let n = Array.length bounds in
  let rec scan i = if i = n then n else if v <= bounds.(i) then i else scan (i + 1) in
  scan 0

let observe h v =
  if !Control.flag then begin
    let i = bucket_index h.h_bounds v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

let value_of = function
  | C c -> Counter c.c_count
  | G g -> Gauge g.g_value
  | H h ->
      Histogram
        {
          bounds = Array.copy h.h_bounds;
          counts = Array.copy h.h_counts;
          sum = h.h_sum;
          count = h.h_count;
        }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_count <- 0
      | G g ->
          g.g_value <- 0.0;
          g.g_set <- false
      | H h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
    registry

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y (* right-biased: the later snapshot wins *)
  | Histogram x, Histogram y ->
      if x.bounds <> y.bounds then
        invalid_arg ("Obs.Metrics.merge: " ^ name ^ " has mismatched buckets");
      Histogram
        {
          bounds = x.bounds;
          counts = Array.init (Array.length x.counts) (fun i -> x.counts.(i) + y.counts.(i));
          sum = x.sum +. y.sum;
          count = x.count + y.count;
        }
  | _ -> invalid_arg ("Obs.Metrics.merge: " ^ name ^ " has mismatched kinds")

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) a;
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt tbl name with
      | None -> Hashtbl.replace tbl name v
      | Some prev -> Hashtbl.replace tbl name (merge_value name prev v))
    b;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
