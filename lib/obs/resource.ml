(* Process resource gauges, fed from [Gc.quick_stat] (cheap: no heap
   walk) and the monotonic clock.  [sample] refreshes every gauge; it is
   called at snapshot time by the CLI/bench exporters and at top-level
   span boundaries by [Span.with_], so a profiled run's last sample
   brackets the work it measured. *)

let minor_words = Metrics.gauge "gc.minor_words"
let promoted_words = Metrics.gauge "gc.promoted_words"
let major_words = Metrics.gauge "gc.major_words"
let heap_words = Metrics.gauge "gc.heap_words"
let top_heap_words = Metrics.gauge "gc.top_heap_words"
let minor_collections = Metrics.gauge "gc.minor_collections"
let major_collections = Metrics.gauge "gc.major_collections"
let compactions = Metrics.gauge "gc.compactions"
let wall_ns = Metrics.gauge "proc.wall_ns"

(* Wall time is measured from library initialisation, which for any
   binary linking obs happens during startup — close enough to process
   start for a trajectory gauge. *)
let t0 = Clock.monotonic ()

let sample () =
  if Control.on () then begin
    let s = Gc.quick_stat () in
    Metrics.set minor_words s.Gc.minor_words;
    Metrics.set promoted_words s.Gc.promoted_words;
    Metrics.set major_words s.Gc.major_words;
    Metrics.set heap_words (float_of_int s.Gc.heap_words);
    Metrics.set top_heap_words (float_of_int s.Gc.top_heap_words);
    Metrics.set minor_collections (float_of_int s.Gc.minor_collections);
    Metrics.set major_collections (float_of_int s.Gc.major_collections);
    Metrics.set compactions (float_of_int s.Gc.compactions);
    Metrics.set wall_ns (Int64.to_float (Int64.sub (Clock.monotonic ()) t0))
  end
