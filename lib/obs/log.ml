(* Leveled, structured JSONL logging.  Independent of the metrics/span
   switch (like [Progress]): [--log] turns it on without dragging the
   rest of the obs layer along, and the disabled cost is one
   [Atomic.get] branch per call site.

   One line per event:

     {"ts_ns":N,"level":"info","event":"http.access","trace":"…",…fields}

   The clock and sink are injectable (tests pin both); the default sink
   is stderr so stdout stays byte-identical with logging on.  When a
   span trace context is set ({!Span.with_trace}) the line carries it as
   a "trace" field automatically, so every log written while serving a
   request correlates with that request's spans and X-Trace-Id. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

let min_rank = Atomic.make 0 (* Debug: emit everything once enabled *)
let set_level l = Atomic.set min_rank (rank l)

let clock = ref Clock.monotonic
let set_clock c = clock := c

let default_sink s =
  output_string stderr s;
  flush stderr

(* The sink is called under a mutex: the service's worker loop is the
   only writer today, but log calls from worker domains (or tests
   reading an injected buffer) must never interleave half-lines. *)
let sink = ref default_sink
let set_sink f = sink := f
let sink_lock = Mutex.create ()

(* Integral field values print as plain integers ("status":200, not
   200.0) — friendlier to eyeballs and to naive grep, still JSON. *)
let render_value = function
  | Json.Number v when Float.is_finite v && Float.is_integer v && Float.abs v < 1e15 ->
      Printf.sprintf "%.0f" v
  | v -> Json.to_string v

let log level event fields =
  if Atomic.get flag && rank level >= Atomic.get min_rank then begin
    let buf = Buffer.create 160 in
    Buffer.add_string buf (Printf.sprintf "{\"ts_ns\":%Ld" (!clock ()));
    Buffer.add_string buf
      (Printf.sprintf ",\"level\":\"%s\",\"event\":\"%s\"" (level_to_string level)
         (Json.escape event));
    (match Span.current_trace () with
    | "" -> ()
    | trace -> Buffer.add_string buf (Printf.sprintf ",\"trace\":\"%s\"" (Json.escape trace)));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf ",\"%s\":%s" (Json.escape k) (render_value v)))
      fields;
    Buffer.add_string buf "}\n";
    let line = Buffer.contents buf in
    Mutex.lock sink_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock sink_lock) (fun () -> !sink line)
  end

let debug event fields = log Debug event fields
let info event fields = log Info event fields
let warn event fields = log Warn event fields
let error event fields = log Error event fields
