(** Global on/off switch for the whole observability layer.

    Every mutation in {!Metrics} and {!Span} is gated on [flag], so with
    observability disabled (the default) an instrumented call site costs a
    single branch and nothing is recorded: instrumented binaries behave —
    and print — exactly like uninstrumented ones. *)

val flag : bool ref
(** The raw switch, exposed so hot paths can read it with one load. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool
