(** Global on/off switch for the whole observability layer.

    Every mutation in {!Metrics} and {!Span} is gated on [flag], so with
    observability disabled (the default) an instrumented call site costs a
    single branch and nothing is recorded: instrumented binaries behave —
    and print — exactly like uninstrumented ones.

    The switch is an [Atomic] so worker domains of the parallel trial
    engine ([Exec] / [Plan.run_trials_par]) read it without a data race;
    flip it before forking work, not during. *)

val flag : bool Atomic.t
(** The raw switch, exposed so hot paths can read it with one load. *)

val on : unit -> bool
(** [Atomic.get flag] — the one-load fast-path test. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool
