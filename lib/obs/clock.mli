(** Injectable nanosecond clocks.

    The tracing layer never calls the system clock directly; it reads
    whichever [t] is installed via {!Span.set_clock}.  Tests install a
    deterministic fake so span timings (and exporter golden output) are
    reproducible. *)

type t = unit -> int64
(** A clock: returns a monotonically non-decreasing timestamp in
    nanoseconds. *)

val monotonic : t
(** Wall-clock based default (nanosecond-scaled [Unix.gettimeofday]). *)

val fake : ?start:int64 -> ?step:int64 -> unit -> t
(** [fake ()] ticks deterministically: each call returns the previous
    value advanced by [step] (default 1000 ns, starting at [start]). *)

val manual : ?start:int64 -> unit -> t * (int64 -> unit)
(** A clock that only moves when the returned [advance] function is
    called — for tests that need exact control over elapsed time. *)
