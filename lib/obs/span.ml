type phase = Begin | End

type event = {
  name : string;
  phase : phase;
  t_ns : int64;
  depth : int;
  domain : int;
  trace : string; (* "" = no trace context *)
}

let clock = ref Clock.monotonic
let set_clock c = clock := c
let now () = !clock ()

(* Per-domain trace context.  The serving layer runs N requests
   concurrently on N worker domains, each under its own trace id, so the
   context must be domain-local: a process-wide slot would let one
   request's id bleed into another's spans.  Domain-local storage (one
   mutable cell per domain, single-writer) makes [with_trace] safe under
   any concurrency; spawning a domain does NOT inherit the parent's
   context — whoever spawns must capture [current_trace] and re-install
   it in the child ({!Exec.parallel_for} does exactly that for its
   workers, which is how a request's id still reaches
   [exec.worker]/[mc.trial] spans). *)
let trace_key : string ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref "")

let current_trace () = !(Domain.DLS.get trace_key)

let with_trace id f =
  let cell = Domain.DLS.get trace_key in
  let prev = !cell in
  cell := id;
  Fun.protect ~finally:(fun () -> cell := prev) f

let default_capacity = 65_536

(* Per-domain ring buffers: cheap push, bounded memory, no cross-domain
   contention.  Each domain owns exactly one ring (single-writer), found
   through domain-local storage; a global registry (mutex-protected, but
   only touched on first use per domain and at snapshot time) lets
   [events]/[reset] see every ring.  When a worker domain exits its ring
   is parked on a free pool and the next spawned domain reuses it, so
   memory is bounded by the peak number of concurrent domains, not by
   the total number ever spawned — and events recorded by exited domains
   stay readable until their slots are overwritten (each event carries
   its own domain id, so reuse never mis-attributes). *)
let dummy = { name = ""; phase = Begin; t_ns = 0L; depth = 0; domain = -1; trace = "" }

type ring = {
  mutable buf : event array;
  mutable next : int; (* slot for the next push *)
  mutable total : int; (* events pushed since last reset *)
  mutable depth : int; (* nesting depth of the owning domain *)
}

let capacity = ref default_capacity
let make_ring () = { buf = Array.make !capacity dummy; next = 0; total = 0; depth = 0 }

let lock = Mutex.create ()
let rings : ring list ref = ref [] (* every ring ever handed out *)
let pool : ring list ref = ref [] (* rings released by exited domains *)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let checkout () =
  locked @@ fun () ->
  match !pool with
  | r :: rest ->
      pool := rest;
      r.depth <- 0;
      r
  | [] ->
      let r = make_ring () in
      rings := r :: !rings;
      r

let release r = locked (fun () -> pool := r :: !pool)

let key : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_ring () =
  match Domain.DLS.get key with
  | Some r -> r
  | None ->
      let r = checkout () in
      Domain.DLS.set key (Some r);
      (* The main domain keeps its ring for the life of the process;
         worker domains hand theirs back for reuse when they exit. *)
      if not (Domain.is_main_domain ()) then Domain.at_exit (fun () -> release r);
      r

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Span.set_capacity: capacity <= 0";
  locked @@ fun () ->
  capacity := n;
  List.iter
    (fun r ->
      r.buf <- Array.make n dummy;
      r.next <- 0;
      r.total <- 0)
    !rings

let reset () =
  locked @@ fun () ->
  List.iter
    (fun r ->
      Array.fill r.buf 0 (Array.length r.buf) dummy;
      r.next <- 0;
      r.total <- 0;
      r.depth <- 0)
    !rings

let push r ev =
  let cap = Array.length r.buf in
  r.buf.(r.next) <- ev;
  r.next <- (r.next + 1) mod cap;
  r.total <- r.total + 1

let dropped () =
  locked @@ fun () ->
  List.fold_left (fun acc r -> acc + Int.max 0 (r.total - Array.length r.buf)) 0 !rings

let ring_events r =
  let cap = Array.length r.buf in
  let n = Int.min r.total cap in
  let start = if r.total <= cap then 0 else r.next in
  List.init n (fun i -> r.buf.((start + i) mod cap))

let events () =
  (* Merge every ring's retained events into one chronological stream.
     The sort is stable, so within one domain (one ring) the push order
     is preserved even under a non-advancing manual clock; take the
     snapshot while no parallel section is running (Exec joins every
     domain before returning) so no ring is being written concurrently. *)
  let all = locked (fun () -> List.concat_map ring_events !rings) in
  List.stable_sort
    (fun a b ->
      match Int64.compare a.t_ns b.t_ns with 0 -> compare a.domain b.domain | c -> c)
    all

let with_ ~name f =
  if not (Atomic.get Control.flag) then f ()
  else begin
    let r = my_ring () in
    let dom = (Domain.self () :> int) in
    let d = r.depth in
    (* Resource gauges bracket top-level spans on the main domain: cheap
       (Gc.quick_stat, no heap walk) and coarse enough to stay off the
       per-trial hot path of worker domains. *)
    if d = 0 && Domain.is_main_domain () then Resource.sample ();
    (* Capture the trace once so Begin and End always agree, even if [f]
       switches contexts. *)
    let trace = current_trace () in
    push r { name; phase = Begin; t_ns = now (); depth = d; domain = dom; trace };
    r.depth <- d + 1;
    Fun.protect
      ~finally:(fun () ->
        r.depth <- d;
        push r { name; phase = End; t_ns = now (); depth = d; domain = dom; trace };
        if d = 0 && Domain.is_main_domain () then Resource.sample ())
      f
  end

type summary = { span_name : string; calls : int; total_ns : int64 }

let summarize evs =
  (* Pair Begin/End events with one stack per domain (the merged stream
     interleaves domains); unmatched events — still-open spans, or spans
     whose Begin was overwritten by a ring wrap — are ignored, so a
     wrapped ring can never corrupt the pairing of surviving spans. *)
  let acc : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, event list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  List.iter
    (fun ev ->
      let stack = stack_of ev.domain in
      match ev.phase with
      | Begin -> stack := ev :: !stack
      | End -> (
          match !stack with
          | b :: rest when b.name = ev.name && b.depth = ev.depth ->
              stack := rest;
              let dt = Int64.sub ev.t_ns b.t_ns in
              let calls, tot =
                Option.value ~default:(0, 0L) (Hashtbl.find_opt acc ev.name)
              in
              Hashtbl.replace acc ev.name (calls + 1, Int64.add tot dt)
          | _ -> ()))
    evs;
  Hashtbl.fold
    (fun span_name (calls, total_ns) out -> { span_name; calls; total_ns } :: out)
    acc []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)
