type phase = Begin | End

type event = { name : string; phase : phase; t_ns : int64; depth : int }

let clock = ref Clock.monotonic
let set_clock c = clock := c
let now () = !clock ()

let default_capacity = 65_536

(* Ring buffer of events: cheap push, bounded memory.  When full, the
   oldest events are overwritten and [dropped] counts them. *)
let dummy = { name = ""; phase = Begin; t_ns = 0L; depth = 0 }
let capacity = ref default_capacity
let buf = ref (Array.make default_capacity dummy)
let next = ref 0 (* slot for the next push *)
let total = ref 0 (* events pushed since last reset *)
let depth = ref 0

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Span.set_capacity: capacity <= 0";
  capacity := n;
  buf := Array.make n dummy;
  next := 0;
  total := 0

let reset () =
  Array.fill !buf 0 (Array.length !buf) dummy;
  next := 0;
  total := 0;
  depth := 0

let push ev =
  !buf.(!next) <- ev;
  next := (!next + 1) mod !capacity;
  incr total

let dropped () = Int.max 0 (!total - !capacity)

let events () =
  let n = Int.min !total !capacity in
  let start = if !total <= !capacity then 0 else !next in
  List.init n (fun i -> !buf.((start + i) mod !capacity))

let with_ ~name f =
  (* Spans are recorded on the main domain only: the ring buffer and the
     nesting depth are plain mutable state, and interleaving Begin/End
     pairs from concurrent trial workers would corrupt both the buffer
     and the tree structure exporters rebuild.  Worker-domain spans run
     their body untraced; metrics (atomic, sharded) remain the
     domain-safe signal inside parallel sections. *)
  if not (Atomic.get Control.flag) || not (Domain.is_main_domain ()) then f ()
  else begin
    let d = !depth in
    push { name; phase = Begin; t_ns = now (); depth = d };
    depth := d + 1;
    Fun.protect
      ~finally:(fun () ->
        depth := d;
        push { name; phase = End; t_ns = now (); depth = d })
      f
  end

type summary = { span_name : string; calls : int; total_ns : int64 }

let summarize evs =
  (* Pair Begin/End events with a stack; unmatched Begins (still-open or
     overwritten spans) are ignored. *)
  let acc : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev.phase with
      | Begin -> stack := ev :: !stack
      | End -> (
          match !stack with
          | b :: rest when b.name = ev.name && b.depth = ev.depth ->
              stack := rest;
              let dt = Int64.sub ev.t_ns b.t_ns in
              let calls, tot =
                Option.value ~default:(0, 0L) (Hashtbl.find_opt acc ev.name)
              in
              Hashtbl.replace acc ev.name (calls + 1, Int64.add tot dt)
          | _ -> ()))
    evs;
  Hashtbl.fold
    (fun span_name (calls, total_ns) out -> { span_name; calls; total_ns } :: out)
    acc []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)
