(** Live progress meter for Monte-Carlo trial loops.

    Switched on by the [--progress] CLI flag (or {!enable}); independent
    of the metrics/span layer, off by default, and a single branch per
    {!tick} while disabled — trial loops call {!tick} unconditionally.

    Runs are handles: {!Plan.run_trials} / {!Plan.run_trials_par} call
    [start ~label ~total], thread the returned {!run} to whichever
    domains complete work, tick it per finished batch, and [finish] it.
    Because a run is not process state, concurrent drivers (e.g. two
    server worker domains each running a plan) own independent meters
    and cannot clobber each other.  Rendering — ["label done/total
    (pct)  rate trials/s  ETA s"], carriage-return style — goes to the
    sink (stderr by default) at most once per interval; a CAS on the
    run's last-render timestamp keeps concurrent domains from painting
    over each other. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

type run
(** A live meter for one driver invocation.  Safe to tick from any
    domain; the completed counter is an atomic shared by all of them. *)

val start : label:string -> total:int -> run
(** Begin a run of [total] work items.  Whether the meter is live is
    latched from {!enabled} at this point, so a run started while the
    flag is off stays silent even if the flag is flipped later. *)

val tick : ?n:int -> run -> unit
(** [tick ?n run] records [n] (default 1) finished work items and
    occasionally repaints the meter. *)

val finish : run -> unit
(** Paint the final state (with a newline). *)

val completed : run -> int
(** Items ticked so far on this run. *)

val set_sink : (string -> unit) -> unit
(** Redirect rendered lines.  The default sink writes + flushes to
    stderr {e only when stderr is a terminal} — under a pipe, a log file
    or [solarstorm serve] the meter is suppressed so it never interleaves
    with captured output.  Injected sinks are never gated. *)

val tty_sink : isatty:(unit -> bool) -> (string -> unit) -> string -> unit
(** [tty_sink ~isatty write] is a sink that forwards to [write] when
    [isatty ()] holds and drops everything otherwise.  The probe runs
    once, on the first write, and its memo is an [Atomic] — first writes
    can race in from several ticking domains (the default sink is
    [tty_sink ~isatty:(fun () -> Unix.isatty Unix.stderr) ...]);
    exposed so tests can inject a deterministic probe. *)

val set_clock : Clock.t -> unit
(** Clock used for rate/ETA and render throttling (default
    {!Clock.monotonic}). *)

val set_interval_ns : int64 -> unit
(** Minimum nanoseconds between repaints (default 2×10⁸ = 5 Hz; 0 =
    repaint on every tick).  @raise Invalid_argument if negative. *)
