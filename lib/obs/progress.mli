(** Live progress meter for Monte-Carlo trial loops.

    Switched on by the [--progress] CLI flag (or {!enable}); independent
    of the metrics/span layer, off by default, and a single branch per
    {!tick} while disabled — trial loops call {!tick} unconditionally.

    One run is active at a time: {!Plan.run_trials} /
    {!Plan.run_trials_par} call [start ~label ~total], tick once per
    completed trial (worker domains share the atomic counter), and
    [finish] when done.  Rendering — ["label done/total (pct)  rate
    trials/s  ETA s"], carriage-return style — goes to the sink (stderr
    by default) at most once per interval; a CAS on the last-render
    timestamp keeps concurrent domains from painting over each other. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val start : label:string -> total:int -> unit
(** Begin a run of [total] work items; replaces any previous run. *)

val tick : unit -> unit
(** One work item finished; occasionally repaints the meter. *)

val finish : unit -> unit
(** Paint the final state (with a newline) and clear the current run. *)

val completed : unit -> int
(** Items ticked in the current run (0 when no run is active). *)

val set_sink : (string -> unit) -> unit
(** Redirect rendered lines.  The default sink writes + flushes to
    stderr {e only when stderr is a terminal} — under a pipe, a log file
    or [solarstorm serve] the meter is suppressed so it never interleaves
    with captured output.  Injected sinks are never gated. *)

val tty_sink : isatty:(unit -> bool) -> (string -> unit) -> string -> unit
(** [tty_sink ~isatty write] is a sink that forwards to [write] when
    [isatty ()] holds and drops everything otherwise.  The probe runs
    once, on the first write (the default sink is
    [tty_sink ~isatty:(fun () -> Unix.isatty Unix.stderr) ...]);
    exposed so tests can inject a deterministic probe. *)

val set_clock : Clock.t -> unit
(** Clock used for rate/ETA and render throttling (default
    {!Clock.monotonic}). *)

val set_interval_ns : int64 -> unit
(** Minimum nanoseconds between repaints (default 2×10⁸ = 5 Hz; 0 =
    repaint on every tick).  @raise Invalid_argument if negative. *)
