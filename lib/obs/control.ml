let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag
let on () = Atomic.get flag
