let flag = ref false
let enable () = flag := true
let disable () = flag := false
let enabled () = !flag
