(* Minimal JSON reader/writer: enough to load the documents this
   repository itself emits (solarstorm-bench/1 perf documents, chrome
   traces) and to serve/accept the simulation service's request and
   response bodies, with no external dependency.  Recursive descent over
   a string; numbers are floats; [null] maps to [Null] (the writer emits
   it for non-finite values). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let error c msg = raise (Parse_error (Printf.sprintf "offset %d: %s" c.i msg))

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else error c ("expected " ^ word)

let parse_string_body c =
  (* Opening quote already consumed. *)
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.i] in
    c.i <- c.i + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.i >= String.length c.s then error c "unterminated escape";
        let e = c.s.[c.i] in
        c.i <- c.i + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
            let hex4 () =
              if c.i + 4 > String.length c.s then error c "truncated \\u escape";
              let hex = String.sub c.s c.i 4 in
              let is_hex ch =
                (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')
                || (ch >= 'A' && ch <= 'F')
              in
              if not (String.for_all is_hex hex) then
                error c ("bad \\u escape " ^ hex);
              c.i <- c.i + 4;
              int_of_string ("0x" ^ hex)
            in
            let code = hex4 () in
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* High surrogate: JSON encodes astral-plane characters as a
                 \uD800-\uDBFF + \uDC00-\uDFFF pair. *)
              if
                not
                  (c.i + 2 <= String.length c.s
                  && c.s.[c.i] = '\\'
                  && c.s.[c.i + 1] = 'u')
              then error c "high surrogate without low surrogate";
              c.i <- c.i + 2;
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then
                error c "high surrogate without low surrogate";
              let u = 0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00) in
              Buffer.add_utf_8_uchar buf (Uchar.of_int u)
            end
            else if Uchar.is_valid code then
              Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            else error c "lone low surrogate";
            go ()
        | _ -> error c "bad escape")
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let numchar ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.i < String.length c.s && numchar c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some v -> Number v
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Object []
      end
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected , or } in object"
        in
        Object (members [])
      end
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        Array []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elems (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> error c "expected , or ] in array"
        in
        Array (elems [])
      end
  | Some '"' ->
      c.i <- c.i + 1;
      String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.i <> String.length s then error c "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

let member k = function
  | Object kvs -> List.assoc_opt k kvs
  | _ -> None

let number = function Number v -> Some v | _ -> None
let string_ = function String s -> Some s | _ -> None
let array = function Array l -> Some l | _ -> None

(* --- writer --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finite_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let number_repr v =
  (* JSON has no literal for non-finite numbers — "%.17g" would print
     "nan"/"inf" and corrupt the document, so map them to null. *)
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else finite_repr v

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let colon = if pretty then ": " else ":" in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number v -> Buffer.add_string buf (number_repr v)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Array [] -> Buffer.add_string buf "[]"
    | Array l ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i v ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) v)
          l;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object kvs ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_char buf '"';
            Buffer.add_string buf colon;
            go (depth + 1) v)
          kvs;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
