(* Minimal JSON reader: enough to load the documents this repository
   itself emits (solarstorm-bench/1 perf documents, chrome traces) with
   no external dependency.  Recursive descent over a string; numbers are
   floats; [null] maps to [Null] (the writer emits it for non-finite
   values). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let error c msg = raise (Parse_error (Printf.sprintf "offset %d: %s" c.i msg))

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else error c ("expected " ^ word)

let parse_string_body c =
  (* Opening quote already consumed. *)
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.i] in
    c.i <- c.i + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.i >= String.length c.s then error c "unterminated escape";
        let e = c.s.[c.i] in
        c.i <- c.i + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
            if c.i + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.i 4 in
            c.i <- c.i + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when Uchar.is_valid code ->
                Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | _ -> error c ("bad \\u escape " ^ hex));
            go ()
        | _ -> error c "bad escape")
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let numchar ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.i < String.length c.s && numchar c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some v -> Number v
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Object []
      end
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected , or } in object"
        in
        Object (members [])
      end
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        Array []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elems (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> error c "expected , or ] in array"
        in
        Array (elems [])
      end
  | Some '"' ->
      c.i <- c.i + 1;
      String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.i <> String.length s then error c "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

let member k = function
  | Object kvs -> List.assoc_opt k kvs
  | _ -> None

let number = function Number v -> Some v | _ -> None
let string_ = function String s -> Some s | _ -> None
let array = function Array l -> Some l | _ -> None
