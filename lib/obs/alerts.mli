(** SLO rules with multi-window burn-rate evaluation over a
    {!Timeseries}.

    A rule is written ["METRIC:AGGcmpTHRESHOLD:WINDOW"], e.g.
    ["server.request.ms:p99<50:5m"] — the condition states the
    *objective* (p99 must stay under 50 over a 5-minute window); the
    alert fires when the objective is violated.  Aggregators: [pNN]
    (windowed histogram quantile), [rate] (windowed counter rate per
    second), [value] (latest gauge reading in the window).  Windows take
    an [s]/[m]/[h] suffix (bare numbers mean seconds).

    Evaluation is multi-window: a rule fires only when both its long
    window and a short window (a fifth of it, floored at two sampler
    steps) are in breach, and resolves as soon as the short window
    recovers.  An empty window — no measurement — is healthy, so a
    breached latency alert resolves once traffic stops.  Transitions
    emit structured {!Log} lines ([alert.firing] at warn,
    [alert.resolved] at info) and the [obs.alerts.firing] gauge always
    holds the current firing count. *)

type agg = Quantile of float | Rate | Value
type cmp = Lt | Gt

type rule = {
  r_src : string;  (** the original rule string, verbatim *)
  r_metric : string;
  r_agg : agg;
  r_cmp : cmp;
  r_threshold : float;
  r_window_ns : int64;
}

val parse_rule : string -> (rule, string) result
(** Parse one ["METRIC:CONDITION:WINDOW"] rule. *)

val parse_window : string -> (int64, string) result
(** Parse a duration like ["30s"], ["5m"], ["1h"] or ["45"] (seconds)
    into nanoseconds.  Shared with the [/varz?window=] query grammar. *)

val window_s : rule -> float
val agg_to_string : agg -> string
val cmp_to_string : cmp -> string

type state = Ok_state | Firing

type status = {
  st_rule : rule;
  st_state : state;
  st_since_ns : int64 option;
      (** sample-clock time the current state began *)
  st_transitions : int;  (** fire + resolve edges since creation *)
  st_value : float option;  (** long-window measurement at last eval *)
  st_short_value : float option;
}

type t

val create : rule list -> t
(** All rules start [Ok_state]; registers the [obs.alerts.firing]
    gauge. *)

val rules : t -> rule list

val evaluate : t -> Timeseries.t -> unit
(** Re-measure every rule against the timeseries and apply transitions.
    A no-op on an empty timeseries.  Timestamps come from the newest
    sample, so evaluation under an injected clock is deterministic.
    Domain-safe: state is mutex-guarded ([evaluate] on the sampler
    domain, {!statuses} from request workers). *)

val statuses : t -> status list
val firing_count : t -> int
