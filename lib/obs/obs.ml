(** Observability substrate: a global metrics registry, span tracing
    against an injectable clock, and machine-readable exporters.

    The layer is off by default and every instrumented call site is gated
    on one branch, so binaries built with instrumentation behave exactly
    like uninstrumented ones until {!enable} is called (the [--metrics] /
    [--trace] CLI flags, or [bench --json], do that).

    Metric name catalogue and the trace-event schema are documented in
    DESIGN.md §Observability. *)

module Clock = Clock
module Metrics = Metrics
module Span = Span
module Export = Export
module Resource = Resource
module Progress = Progress
module Log = Log
module Json = Json
module Timeseries = Timeseries
module Alerts = Alerts

let enable = Control.enable
let disable = Control.disable
let enabled = Control.enabled

let reset () =
  Metrics.reset ();
  Span.reset ()
