(* SLO burn-rate alerting over a {!Timeseries}.

   A rule is the *objective* — "server.request.ms:p99<50:5m" reads
   "the windowed p99 of server.request.ms must stay under 50 (ms) over
   a 5-minute window".  An alert fires when the objective is violated,
   and multi-window evaluation keeps it honest: the rule's window is
   the LONG window (sustained breach) and a fifth of it (clamped to at
   least one sampler step) is the SHORT window (still breaching now).
   Firing requires both, so one slow request five minutes ago cannot
   page; resolving requires only the short window to recover, so the
   alert clears as soon as the bleeding stops instead of waiting for
   the long window to drain.

   Transitions are the observable product: each one bumps a counter,
   emits a structured {!Log} line (alert.firing / alert.resolved) and
   updates the [obs.alerts.firing] gauge, so /metrics, the JSONL log
   and /alertz all tell the same story.  Evaluation timestamps come
   from the timeseries' newest sample, never the wall clock, so a test
   driving an injected clock sees deterministic [since] values.

   Domain-safety: [evaluate] runs on the sampler domain while /alertz
   reads [statuses] from a worker, so entry state is mutex-guarded. *)

type agg = Quantile of float | Rate | Value

type cmp = Lt | Gt

type rule = {
  r_src : string;
  r_metric : string;
  r_agg : agg;
  r_cmp : cmp;
  r_threshold : float;
  r_window_ns : int64;
}

let agg_to_string = function
  | Quantile q -> Printf.sprintf "p%g" (q *. 100.0)
  | Rate -> "rate"
  | Value -> "value"

let cmp_to_string = function Lt -> "<" | Gt -> ">"

let window_s rule = Int64.to_float rule.r_window_ns /. 1e9

(* "5m" / "90s" / "2h" / bare seconds. *)
let parse_window s =
  let num, unit_ns =
    match String.length s with
    | 0 -> ("", None)
    | n -> (
        match s.[n - 1] with
        | 's' -> (String.sub s 0 (n - 1), Some 1_000_000_000L)
        | 'm' -> (String.sub s 0 (n - 1), Some 60_000_000_000L)
        | 'h' -> (String.sub s 0 (n - 1), Some 3_600_000_000_000L)
        | _ -> (s, Some 1_000_000_000L))
  in
  match (float_of_string_opt num, unit_ns) with
  | Some v, Some ns when v > 0.0 && Float.is_finite v ->
      Ok (Int64.of_float (v *. Int64.to_float ns))
  | _ -> Error (Printf.sprintf "bad window %S (expected e.g. 30s, 5m, 1h)" s)

let parse_agg s =
  match s with
  | "rate" -> Ok Rate
  | "value" -> Ok Value
  | _ when String.length s > 1 && s.[0] = 'p' -> (
      match float_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some pct when pct > 0.0 && pct < 100.0 -> Ok (Quantile (pct /. 100.0))
      | _ -> Error (Printf.sprintf "bad quantile %S (expected p50, p95, p99.9, ...)" s))
  | _ -> Error (Printf.sprintf "bad aggregator %S (expected pNN, rate or value)" s)

let parse_rule src =
  (* METRIC:AGG(<|>)THRESHOLD:WINDOW — the metric name itself never
     contains ':' (the registry uses dots). *)
  match String.split_on_char ':' src with
  | [ metric; cond; window ] when metric <> "" -> (
      let cmp_at =
        let lt = String.index_opt cond '<' and gt = String.index_opt cond '>' in
        match (lt, gt) with
        | Some i, None -> Some (i, Lt)
        | None, Some i -> Some (i, Gt)
        | _ -> None
      in
      match cmp_at with
      | None -> Error (Printf.sprintf "rule %S: condition needs one < or >" src)
      | Some (i, cmp) -> (
          let agg_s = String.sub cond 0 i in
          let thresh_s = String.sub cond (i + 1) (String.length cond - i - 1) in
          match (parse_agg agg_s, float_of_string_opt thresh_s, parse_window window) with
          | Error e, _, _ | _, _, Error e -> Error (Printf.sprintf "rule %S: %s" src e)
          | _, None, _ -> Error (Printf.sprintf "rule %S: bad threshold %S" src thresh_s)
          | Ok agg, Some threshold, Ok window_ns when Float.is_finite threshold ->
              Ok
                {
                  r_src = src;
                  r_metric = metric;
                  r_agg = agg;
                  r_cmp = cmp;
                  r_threshold = threshold;
                  r_window_ns = window_ns;
                }
          | _ -> Error (Printf.sprintf "rule %S: bad threshold %S" src thresh_s)))
  | _ -> Error (Printf.sprintf "rule %S: expected METRIC:CONDITION:WINDOW" src)

type state = Ok_state | Firing

type status = {
  st_rule : rule;
  st_state : state;
  st_since_ns : int64 option;  (* newest-sample time the state began *)
  st_transitions : int;
  st_value : float option;  (* long-window value at last evaluation *)
  st_short_value : float option;
}

type entry = {
  e_rule : rule;
  mutable e_state : state;
  mutable e_since_ns : int64 option;
  mutable e_transitions : int;
  mutable e_value : float option;
  mutable e_short : float option;
}

type t = { entries : entry list; lock : Mutex.t; g_firing : Metrics.gauge }

let create rules =
  {
    entries =
      List.map
        (fun r ->
          {
            e_rule = r;
            e_state = Ok_state;
            e_since_ns = None;
            e_transitions = 0;
            e_value = None;
            e_short = None;
          })
        rules;
    lock = Mutex.create ();
    g_firing = Metrics.gauge "obs.alerts.firing";
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rules t = List.map (fun e -> e.e_rule) t.entries

let measure ts ~window_ns rule =
  match rule.r_agg with
  | Quantile q -> Timeseries.windowed_quantile ts ~window_ns ~q rule.r_metric
  | Rate -> Timeseries.windowed_rate ts ~window_ns rule.r_metric
  | Value -> (
      (* A gauge is already instantaneous; "over the window" means its
         latest reading inside it. *)
      match List.rev (Timeseries.gauge_series ts ~window_ns rule.r_metric) with
      | p :: _ -> Some p.Timeseries.p_v
      | [] -> None)

let objective_holds rule v =
  match rule.r_cmp with Lt -> v < rule.r_threshold | Gt -> v > rule.r_threshold

(* Breached only when there is a measurement AND it violates the
   objective: an empty window (no traffic) is healthy, which is what
   lets a breached latency SLO resolve once load stops. *)
let breached rule = function None -> false | Some v -> not (objective_holds rule v)

let log_transition ~now_ns ~firing e value =
  let open Json in
  let fields =
    [
      ("rule", String e.e_rule.r_src);
      ("metric", String e.e_rule.r_metric);
      ("agg", String (agg_to_string e.e_rule.r_agg));
      ("objective",
       String
         (Printf.sprintf "%s%s%g"
            (agg_to_string e.e_rule.r_agg)
            (cmp_to_string e.e_rule.r_cmp)
            e.e_rule.r_threshold));
      ("window_s", Number (window_s e.e_rule));
      ("value", match value with Some v -> Number v | None -> Null);
      ("ts_sample_ns", Number (Int64.to_float now_ns));
    ]
  in
  if firing then Log.warn "alert.firing" fields else Log.info "alert.resolved" fields

let short_window_ns ts rule =
  (* A fifth of the long window, but never finer than one sampler step
     (below that there is at most one sample and no delta to judge);
     two steps so the short window always spans at least one delta. *)
  let floor_ns = Int64.mul 2L (Timeseries.step_ns ts) in
  let fifth = Int64.div rule.r_window_ns 5L in
  if Int64.compare fifth floor_ns < 0 then floor_ns else fifth

let evaluate t ts =
  match Timeseries.latest ts with
  | None -> ()
  | Some (now_ns, _) ->
      let transitions =
        locked t @@ fun () ->
        List.filter_map
          (fun e ->
            let rule = e.e_rule in
            let long = measure ts ~window_ns:rule.r_window_ns rule in
            let short = measure ts ~window_ns:(short_window_ns ts rule) rule in
            e.e_value <- long;
            e.e_short <- short;
            if e.e_since_ns = None then e.e_since_ns <- Some now_ns;
            let fire = breached rule long && breached rule short in
            match (e.e_state, fire, breached rule short) with
            | Ok_state, true, _ ->
                e.e_state <- Firing;
                e.e_since_ns <- Some now_ns;
                e.e_transitions <- e.e_transitions + 1;
                Some (e, true, long)
            | Firing, _, false ->
                e.e_state <- Ok_state;
                e.e_since_ns <- Some now_ns;
                e.e_transitions <- e.e_transitions + 1;
                Some (e, false, long)
            | _ -> None)
          t.entries
      in
      (* Log outside the lock: sinks may block on I/O. *)
      List.iter (fun (e, firing, v) -> log_transition ~now_ns ~firing e v) transitions;
      let firing =
        locked t @@ fun () ->
        List.length (List.filter (fun e -> e.e_state = Firing) t.entries)
      in
      Metrics.set t.g_firing (float_of_int firing)

let statuses t =
  locked t @@ fun () ->
  List.map
    (fun e ->
      {
        st_rule = e.e_rule;
        st_state = e.e_state;
        st_since_ns = e.e_since_ns;
        st_transitions = e.e_transitions;
        st_value = e.e_value;
        st_short_value = e.e_short;
      })
    t.entries

let firing_count t =
  locked t @@ fun () ->
  List.length (List.filter (fun e -> e.e_state = Firing) t.entries)
