(** Leveled, structured JSONL logging.

    [log level event fields] emits one compact JSON object per line:

    {v {"ts_ns":…,"level":"info","event":"http.access","trace":"…",…} v}

    Off by default and independent of the metrics/span switch (the
    [--log] CLI flag enables it); a disabled call costs one branch.
    Clock and sink are injectable like {!Progress}'s; the default sink
    is stderr, so stdout stays byte-identical with logging on.

    When a trace context is active ({!Span.with_trace}) every line
    automatically carries it as a ["trace"] field, correlating logs with
    that request's spans and its [X-Trace-Id] response header.

    Field values are rendered with {!Json.to_string}, except integral
    finite numbers, which print as plain integers (["status":200]). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val set_level : level -> unit
(** Minimum level that is emitted (default [Debug] — everything). *)

val set_clock : Clock.t -> unit
(** Timestamp source for [ts_ns] (default {!Clock.monotonic}). *)

val set_sink : (string -> unit) -> unit
(** Where complete lines go (default: stderr, flushed per line).  Calls
    are serialized under an internal mutex so lines never interleave. *)

val log : level -> string -> (string * Json.t) list -> unit
(** [log level event fields] — [event] names the line, [fields] are
    appended in order.  No-op when disabled or below {!set_level}. *)

val debug : string -> (string * Json.t) list -> unit
val info : string -> (string * Json.t) list -> unit
val warn : string -> (string * Json.t) list -> unit
val error : string -> (string * Json.t) list -> unit
