let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Span.event) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts_ns\":%Ld,\"depth\":%d}\n"
           (json_escape e.Span.name)
           (match e.Span.phase with Span.Begin -> "B" | Span.End -> "E")
           e.Span.t_ns e.Span.depth))
    events;
  Buffer.contents buf

(* Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'. *)
let prometheus_name s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = ':'
      then c
      else '_')
    s

let prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Metrics.Counter n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Metrics.Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pname pname (json_float g))
      | Metrics.Histogram { bounds; counts; sum; count } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (json_float b) !cum))
            bounds;
          cum := !cum + counts.(Array.length counts - 1);
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname !cum);
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" pname (json_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname count))
    snap;
  Buffer.contents buf

let json_of_value = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g -> json_float g
  | Metrics.Histogram { bounds; counts; sum; count } ->
      let buckets =
        List.init (Array.length counts) (fun i ->
            let le =
              if i < Array.length bounds then Printf.sprintf "%s" (json_float bounds.(i))
              else "\"+Inf\""
            in
            Printf.sprintf "{\"le\":%s,\"n\":%d}" le counts.(i))
      in
      Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" count (json_float sum)
        (String.concat "," buckets)

let json_of_snapshot (snap : Metrics.snapshot) =
  "{"
  ^ String.concat ","
      (List.map (fun (name, v) -> Printf.sprintf "\"%s\":%s" (json_escape name) (json_of_value v)) snap)
  ^ "}"
