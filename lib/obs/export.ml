(* The canonical escaping/float spelling lives in {!Json} (the writer
   side of the parser); these aliases keep the exporter's historical
   surface. *)
let json_escape = Json.escape

let finite_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let json_float = Json.number_repr

let prom_float v =
  (* Prometheus exposition, unlike JSON, spells non-finite values out. *)
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else finite_repr v

(* Events recorded outside any trace context keep the historical line
   shape; only traced events grow the extra field. *)
let trace_suffix (e : Span.event) =
  if e.Span.trace = "" then "" else Printf.sprintf ",\"trace\":\"%s\"" (json_escape e.Span.trace)

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Span.event) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"%s\",\"ts_ns\":%Ld,\"depth\":%d,\"domain\":%d%s}\n"
           (json_escape e.Span.name)
           (match e.Span.phase with Span.Begin -> "B" | Span.End -> "E")
           e.Span.t_ns e.Span.depth e.Span.domain (trace_suffix e)))
    events;
  Buffer.contents buf

let chrome_trace ?(process_name = "solarstorm") events =
  (* Chrome/Perfetto trace-event JSON: duration events ("ph":"B"/"E"),
     one pid for the process, tid = recording domain id, timestamps in
     microseconds rebased to the earliest event so doubles keep
     nanosecond precision.  Metadata events name the process and each
     domain so trace viewers label the rows. *)
  let base =
    List.fold_left
      (fun acc (e : Span.event) -> if e.Span.t_ns < acc then e.Span.t_ns else acc)
      (match events with [] -> 0L | e :: _ -> e.Span.t_ns)
      events
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : Span.event) -> e.Span.domain) events)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
       (json_escape process_name));
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun (e : Span.event) ->
      (* Traced events carry the request id as an arg, so Perfetto's
         search box ("args.trace:<id>" or plain <id>) jumps straight to
         one request's spans across every domain row. *)
      let args =
        if e.Span.trace = "" then ""
        else Printf.sprintf ",\"args\":{\"trace\":\"%s\"}" (json_escape e.Span.trace)
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
           (json_escape e.Span.name)
           (match e.Span.phase with Span.Begin -> "B" | Span.End -> "E")
           (Int64.to_float (Int64.sub e.Span.t_ns base) /. 1e3)
           e.Span.domain args))
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'. *)
let prometheus_name s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = ':'
      then c
      else '_')
    s

let prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Metrics.Counter n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Metrics.Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pname pname (prom_float g))
      | Metrics.Histogram { bounds; counts; sum; count } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (prom_float b) !cum))
            bounds;
          cum := !cum + counts.(Array.length counts - 1);
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname !cum);
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" pname (prom_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname count);
          (* Pre-computed SLO quantiles as a companion gauge family, so
             scrapers without histogram_quantile (and humans reading
             /metrics) get p50/p95/p99 directly.  Empty histograms skip
             the family — there is nothing to estimate. *)
          if count > 0 then begin
            Buffer.add_string buf (Printf.sprintf "# TYPE %s_quantile gauge\n" pname);
            List.iter
              (fun (label, q) ->
                match Metrics.quantile ~bounds ~counts q with
                | Some v ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s_quantile{q=\"%s\"} %s\n" pname label (prom_float v))
                | None -> ())
              [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ]
          end)
    snap;
  Buffer.contents buf

let json_of_value = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g -> json_float g
  | Metrics.Histogram { bounds; counts; sum; count } ->
      let buckets =
        List.init (Array.length counts) (fun i ->
            let le =
              if i < Array.length bounds then Printf.sprintf "%s" (json_float bounds.(i))
              else "\"+Inf\""
            in
            Printf.sprintf "{\"le\":%s,\"n\":%d}" le counts.(i))
      in
      Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" count (json_float sum)
        (String.concat "," buckets)

let json_of_snapshot (snap : Metrics.snapshot) =
  "{"
  ^ String.concat ","
      (List.map (fun (name, v) -> Printf.sprintf "\"%s\":%s" (json_escape name) (json_of_value v)) snap)
  ^ "}"
