(** Machine-readable exporters.

    - [jsonl]: one JSON object per span event
      ([{"name":…,"ph":"B"|"E","ts_ns":…,"depth":…}]), suitable for
      line-oriented trace tooling;
    - [prometheus]: Prometheus text exposition format (names are
      sanitised, histograms expand to cumulative [_bucket]/[_sum]/[_count]
      series);
    - [json_of_snapshot]: a single JSON object keyed by metric name, the
      form embedded in [bench --json] documents.

    The human-readable table rendering lives in [Report.Obs_report] so
    this library stays dependency-free. *)

val jsonl : Span.event list -> string

val prometheus : Metrics.snapshot -> string

val json_of_snapshot : Metrics.snapshot -> string

val json_escape : string -> string
(** Escape a string for embedding inside a JSON string literal (quotes
    not included). *)

val json_float : float -> string
(** Compact JSON float formatting (integers render as ["n.0"]). *)
