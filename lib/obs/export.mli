(** Machine-readable exporters.

    - [jsonl]: one JSON object per span event
      ([{"name":…,"ph":"B"|"E","ts_ns":…,"depth":…,"domain":…}]),
      suitable for line-oriented trace tooling; events recorded under a
      {!Span.with_trace} context gain a trailing ["trace"] field;
    - [chrome_trace]: Chrome/Perfetto trace-event JSON (duration events,
      [pid] 1, [tid] = recording domain id), what [solarstorm --profile]
      writes; traced events carry [{"args":{"trace":…}}] so Perfetto's
      search finds one request's spans by its [X-Trace-Id];
    - [prometheus]: Prometheus text exposition format (names are
      sanitised, histograms expand to cumulative [_bucket]/[_sum]/[_count]
      series plus a [_quantile{q=…}] gauge family with estimated
      p50/p95/p99 when non-empty, non-finite values spelled
      [NaN]/[+Inf]/[-Inf]);
    - [json_of_snapshot]: a single JSON object keyed by metric name, the
      form embedded in [bench --json] documents.

    The human-readable table rendering lives in [Report.Obs_report] so
    this library stays dependency-free. *)

val jsonl : Span.event list -> string

val chrome_trace : ?process_name:string -> Span.event list -> string
(** Trace-event JSON document ([{"traceEvents":[…]}]).  Timestamps are
    microseconds rebased to the earliest event; every distinct domain id
    gets a [thread_name] metadata record ["domain N"].  Load in
    [ui.perfetto.dev] or [chrome://tracing]. *)

val prometheus : Metrics.snapshot -> string

val json_of_snapshot : Metrics.snapshot -> string

val json_escape : string -> string
(** Escape a string for embedding inside a JSON string literal (quotes
    not included). *)

val json_float : float -> string
(** Compact JSON float formatting (integers render as ["n.0"]).  JSON
    has no non-finite literals, so [nan]/[inf]/[-inf] render as
    ["null"]. *)

val prom_float : float -> string
(** Prometheus exposition float formatting: like {!json_float} for
    finite values, but non-finite values spell out as ["NaN"], ["+Inf"]
    and ["-Inf"] as the exposition format requires. *)
