(** Minimal JSON reader — just enough to load the documents this
    repository itself writes (solarstorm-bench/1 perf documents, chrome
    traces) without an external dependency.  Numbers are floats; [null]
    is what {!Export.json_float} emits for non-finite values. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; rejects trailing content.  Errors carry the
    byte offset of the failure. *)

val parse_file : string -> (t, string) result
(** {!parse} the whole contents of a file; I/O failures become [Error]. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing fields or non-objects. *)

val number : t -> float option

val string_ : t -> string option

val array : t -> t list option
