(** Minimal JSON reader/writer — just enough to load the documents this
    repository itself writes (solarstorm-bench/1 perf documents, chrome
    traces) and to parse/serve the simulation service's request and
    response bodies, without an external dependency.  Numbers are
    floats; [null] is what {!number_repr} (and {!Export.json_float})
    emits for non-finite values. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; rejects trailing content.  Errors carry the
    byte offset of the failure. *)

val parse_file : string -> (t, string) result
(** {!parse} the whole contents of a file; I/O failures become [Error]. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing fields or non-objects. *)

val number : t -> float option

val string_ : t -> string option

val array : t -> t list option

val escape : string -> string
(** Escape a string for embedding between JSON double quotes (control
    characters become [\uXXXX] escapes; the quotes themselves are not
    added). *)

val number_repr : float -> string
(** Canonical JSON spelling of a float: integral values < 10¹⁵ print as
    ["%.1f"], everything else as ["%.17g"]; non-finite values become
    ["null"] (JSON has no literal for them). *)

val to_string : ?pretty:bool -> t -> string
(** Serialize.  Compact by default (no whitespace — the service's wire
    format); [~pretty:true] indents with two spaces for human eyes.
    Round-trips through {!parse} except for non-finite numbers, which
    serialize as [null]. *)
