(* Live progress for long trial loops.  Independent of the metrics/span
   switch: [--progress] turns it on without dragging the rest of the obs
   layer along.  Disabled cost is one branch per call.

   Runs are handles, not process state: [start] returns a [run] that the
   driver threads to whatever domain ticks it.  Two concurrent
   [run_trials] calls (e.g. two server worker domains each running a
   plan) therefore own independent meters — a second [start] can never
   clobber an unfinished run, which it silently did when the current run
   lived in one process-wide atomic.  Each run's counter is an [Atomic]
   shared by every worker domain ticking it; rendering is throttled by a
   CAS on the run's last-render timestamp so at most one domain paints a
   given interval, and output goes to an injectable sink (stderr by
   default) so stdout stays byte-identical with the meter on. *)

let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

let clock = ref Clock.monotonic
let set_clock c = clock := c

(* A carriage-return meter painted into a pipe or a log file is just
   noise (and, under `solarstorm serve`, interleaves with request logs),
   so the default sink drops everything unless stderr is a terminal.
   The probe is evaluated once, on the first write; the memo is an
   [Atomic] because the first writes can race in from several ticking
   domains (the probe is idempotent, so concurrent initialisation is
   benign — but a plain [ref] read/written across domains was a data
   race).  Injected sinks ([set_sink]) are never gated — the injector
   knows where the bytes go. *)
let tty_sink ~isatty write =
  let known = Atomic.make None in
  fun s ->
    let tty =
      match Atomic.get known with
      | Some b -> b
      | None ->
          let b = isatty () in
          Atomic.set known (Some b);
          b
    in
    if tty then write s

let default_sink =
  tty_sink
    ~isatty:(fun () -> Unix.isatty Unix.stderr)
    (fun s ->
      output_string stderr s;
      flush stderr)

let sink = ref default_sink
let set_sink f = sink := f

(* Default: repaint at most five times a second. *)
let interval_ns = ref 200_000_000L

let set_interval_ns ns =
  if ns < 0L then invalid_arg "Obs.Progress.set_interval_ns: interval < 0";
  interval_ns := ns

type run = {
  label : string;
  total : int;
  live : bool; (* meter enabled when the run started *)
  completed : int Atomic.t;
  start_ns : int64;
  last_render : int64 Atomic.t;
}

let completed r = Atomic.get r.completed

let render ~final r =
  let done_ = Atomic.get r.completed in
  let elapsed_s = Int64.to_float (Int64.sub (!clock ()) r.start_ns) /. 1e9 in
  let rate = if elapsed_s > 0.0 then float_of_int done_ /. elapsed_s else 0.0 in
  let eta_s = if rate > 0.0 then float_of_int (r.total - done_) /. rate else 0.0 in
  let pct = 100.0 *. float_of_int done_ /. float_of_int (Int.max 1 r.total) in
  let line =
    Printf.sprintf "\r%s %d/%d (%.0f%%)  %.0f trials/s  ETA %.1fs " r.label done_
      r.total pct rate eta_s
  in
  !sink (if final then line ^ "\n" else line)

let start ~label ~total =
  let live = Atomic.get flag in
  {
    label;
    total;
    live;
    completed = Atomic.make 0;
    start_ns = (if live then !clock () else 0L);
    last_render = Atomic.make 0L;
  }

let tick ?(n = 1) r =
  if r.live then begin
    ignore (Atomic.fetch_and_add r.completed n);
    let now = !clock () in
    let last = Atomic.get r.last_render in
    if
      Int64.compare (Int64.sub now last) !interval_ns >= 0
      && Atomic.compare_and_set r.last_render last now
    then render ~final:false r
  end

let finish r = if r.live then render ~final:true r
