(* Live progress for long trial loops.  Independent of the metrics/span
   switch: [--progress] turns it on without dragging the rest of the obs
   layer along.  Disabled cost is one [Atomic.get] branch per call.

   The counter is a single [Atomic] shared by every worker domain;
   rendering is throttled by a CAS on the last-render timestamp so at
   most one domain paints a given interval, and output goes to an
   injectable sink (stderr by default) so stdout stays byte-identical
   with the meter on. *)

let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

let clock = ref Clock.monotonic
let set_clock c = clock := c

(* A carriage-return meter painted into a pipe or a log file is just
   noise (and, under `solarstorm serve`, interleaves with request logs),
   so the default sink drops everything unless stderr is a terminal.
   The probe is evaluated once, on the first write; injected sinks
   ([set_sink]) are never gated — the injector knows where the bytes
   go. *)
let tty_sink ~isatty write =
  let known = ref None in
  fun s ->
    let tty =
      match !known with
      | Some b -> b
      | None ->
          let b = isatty () in
          known := Some b;
          b
    in
    if tty then write s

let default_sink =
  tty_sink
    ~isatty:(fun () -> Unix.isatty Unix.stderr)
    (fun s ->
      output_string stderr s;
      flush stderr)

let sink = ref default_sink
let set_sink f = sink := f

(* Default: repaint at most five times a second. *)
let interval_ns = ref 200_000_000L

let set_interval_ns ns =
  if ns < 0L then invalid_arg "Obs.Progress.set_interval_ns: interval < 0";
  interval_ns := ns

type run = {
  label : string;
  total : int;
  completed : int Atomic.t;
  start_ns : int64;
  last_render : int64 Atomic.t;
}

let current : run option Atomic.t = Atomic.make None

let completed () =
  match Atomic.get current with None -> 0 | Some r -> Atomic.get r.completed

let render ~final r =
  let done_ = Atomic.get r.completed in
  let elapsed_s = Int64.to_float (Int64.sub (!clock ()) r.start_ns) /. 1e9 in
  let rate = if elapsed_s > 0.0 then float_of_int done_ /. elapsed_s else 0.0 in
  let eta_s = if rate > 0.0 then float_of_int (r.total - done_) /. rate else 0.0 in
  let pct = 100.0 *. float_of_int done_ /. float_of_int (Int.max 1 r.total) in
  let line =
    Printf.sprintf "\r%s %d/%d (%.0f%%)  %.0f trials/s  ETA %.1fs " r.label done_
      r.total pct rate eta_s
  in
  !sink (if final then line ^ "\n" else line)

let start ~label ~total =
  if Atomic.get flag then
    Atomic.set current
      (Some
         {
           label;
           total;
           completed = Atomic.make 0;
           start_ns = !clock ();
           last_render = Atomic.make 0L;
         })

let tick () =
  if Atomic.get flag then
    match Atomic.get current with
    | None -> ()
    | Some r ->
        ignore (Atomic.fetch_and_add r.completed 1);
        let now = !clock () in
        let last = Atomic.get r.last_render in
        if
          Int64.compare (Int64.sub now last) !interval_ns >= 0
          && Atomic.compare_and_set r.last_render last now
        then render ~final:false r

let finish () =
  if Atomic.get flag then
    match Atomic.get current with
    | None -> ()
    | Some r ->
        render ~final:true r;
        Atomic.set current None
