(** Process-global metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Registration ([counter] / [gauge] / [histogram]) is idempotent and
    cheap, so instrumented modules register their metrics once at module
    initialisation.  Mutations ([incr], [add], [set], [observe]) are
    no-ops unless the layer is enabled (see {!Control}), costing a single
    branch on the disabled path.

    [snapshot] freezes the registry into a plain, order-stable value that
    exporters consume; snapshots from different runs (or shards) can be
    combined with [merge].

    The registry is domain-safe: mutations are [Atomic] (counters are
    sharded per domain so hot counters like [rng.draws] don't serialize
    the parallel trial engine), and registration/snapshot/reset take a
    mutex.  Totals are exact — a counter's value is the sum over its
    shards — so sequential and Domain-parallel runs of the same seeded
    workload report identical counts. *)

type counter
type gauge
type histogram

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }
      (** [counts] has one slot per bound (value <= bound, first match
          wins) plus a final overflow slot. *)

type snapshot = (string * value) list
(** Sorted by metric name. *)

val counter : string -> counter
(** Find-or-create. @raise Invalid_argument if the name is already
    registered as a different kind. *)

val gauge : string -> gauge

val histogram : string -> buckets:float array -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit overflow
    bucket catches everything above the last bound.
    @raise Invalid_argument on empty or non-increasing [buckets], or if
    the name exists with different buckets. *)

val enabled : unit -> bool
(** True when the observability layer is switched on — use to gate any
    non-trivial work done only to feed a metric. *)

val shard_of_id : int -> int
(** Shard index a given domain id maps to — a mixed (Fibonacci) hash of
    the id, not a plain mask, because sequentially allocated domain ids
    would otherwise collide pairwise mod the shard count.  Exposed for
    tests asserting shard dispersion. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val snapshot : unit -> snapshot

val find : snapshot -> string -> value option
(** Look up one metric in a frozen snapshot by registry name. *)

val quantile : bounds:float array -> counts:int array -> float -> float option
(** [quantile ~bounds ~counts q] estimates the [q]-quantile (0 ≤ q ≤ 1)
    of a histogram from its bucket counts, Prometheus-style: locate the
    bucket holding rank [q·total] and interpolate linearly inside it
    (observations assumed uniform within a bucket).  [counts] is the
    snapshot layout — one slot per bound plus the overflow slot.
    Returns [None] on an empty histogram.  A quantile landing in the
    overflow bucket collapses to the last finite bound.
    @raise Invalid_argument if [q] is outside [0, 1] or the array
    lengths disagree. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val merge : snapshot -> snapshot -> snapshot
(** Counters add, histograms add bucket-wise, gauges take the
    right-hand (later) value.  @raise Invalid_argument on kind or bucket
    mismatches. *)
