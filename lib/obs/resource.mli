(** Process resource gauges: GC counters and wall time, exported through
    the ordinary {!Metrics} snapshot/Prometheus/JSON paths.

    Gauge catalogue (all last-write-wins, refreshed by {!sample}):
    - [gc.minor_words], [gc.promoted_words], [gc.major_words] — words
      allocated/promoted since process start ([Gc.quick_stat]);
    - [gc.heap_words], [gc.top_heap_words] — current and peak major heap;
    - [gc.minor_collections], [gc.major_collections], [gc.compactions];
    - [proc.wall_ns] — monotonic nanoseconds since the obs library
      initialised (≈ process start).

    {!Span.with_} samples automatically around top-level main-domain
    spans; exporters call {!sample} once more right before snapshotting
    so the gauges describe the finished run. *)

val sample : unit -> unit
(** Refresh every gauge from [Gc.quick_stat] and the monotonic clock.
    A no-op while the obs layer is disabled. *)
