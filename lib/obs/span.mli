(** Span tracing: nested begin/end events against an injectable clock.

    [with_ ~name f] wraps [f] in a span.  When the layer is disabled the
    wrapper is a single branch around [f]; when enabled it pushes a
    [Begin] and an [End] event (the latter even if [f] raises) into a
    bounded ring buffer.  Events carry the nesting depth at the time the
    span opened, so exporters can reconstruct the parent/child tree.

    Spans are recorded on the {e main domain} only: inside the parallel
    trial engine's worker domains [with_] degrades to running its body
    untraced (the ring buffer is single-writer state).  Use {!Metrics}
    for domain-safe signals inside parallel sections. *)

type phase = Begin | End

type event = { name : string; phase : phase; t_ns : int64; depth : int }

val set_clock : Clock.t -> unit
(** Install the clock used to stamp events (default {!Clock.monotonic}). *)

val now : unit -> int64
(** Read the installed clock. *)

val with_ : name:string -> (unit -> 'a) -> 'a

val events : unit -> event list
(** Retained events, oldest first.  The buffer is a ring: once more than
    the capacity have been recorded, the oldest are gone (see
    [dropped]). *)

val dropped : unit -> int

val set_capacity : int -> unit
(** Resize the ring (discards retained events).  Default 65536 events.
    @raise Invalid_argument if the capacity is not positive. *)

val reset : unit -> unit
(** Drop all retained events and reset the nesting depth. *)

type summary = { span_name : string; calls : int; total_ns : int64 }

val summarize : event list -> summary list
(** Per-name call counts and total inclusive time, from pairing matching
    [Begin]/[End] events; sorted by name.  Unpaired events are ignored. *)
