(** Span tracing: nested begin/end events against an injectable clock.

    [with_ ~name f] wraps [f] in a span.  When the layer is disabled the
    wrapper is a single branch around [f]; when enabled it pushes a
    [Begin] and an [End] event (the latter even if [f] raises) into a
    bounded ring buffer.  Events carry the nesting depth at the time the
    span opened, so exporters can reconstruct the parent/child tree.

    Rings are {e per-domain}: every domain that opens a span gets its own
    single-writer ring (cached in domain-local storage), so [with_]
    records from inside {!Exec.parallel_for} workers without locks on
    the hot path.  Each event carries the recording domain's id —
    exporters use it as the thread id ({!Export.chrome_trace}) and
    {!summarize} pairs events per domain.  Rings of exited worker
    domains are pooled and reused by later domains, bounding memory by
    the peak number of concurrent domains while keeping their recorded
    events readable until overwritten.

    [events]/[summarize]/[dropped] must be called while no worker domain
    is recording (i.e. outside any [Exec.parallel_for] section — the
    pool joins all domains per call, so "after the run" is always safe).

    Top-level spans on the main domain additionally sample the
    {!Resource} gauges at both boundaries. *)

type phase = Begin | End

type event = {
  name : string;
  phase : phase;
  t_ns : int64;
  depth : int;
  domain : int;
  trace : string;  (** trace context captured when the span opened; [""] = none *)
}

val set_clock : Clock.t -> unit
(** Install the clock used to stamp events (default {!Clock.monotonic}).
    Shared by every domain — inject single-domain fakes only in
    single-domain tests. *)

val now : unit -> int64
(** Read the installed clock. *)

val with_trace : string -> (unit -> 'a) -> 'a
(** [with_trace id f] runs [f] with [id] as the {e calling domain's}
    trace context, restoring the previous context afterwards (even on
    raise).  The context is domain-local, so N worker domains can each
    serve a different request under a different id concurrently without
    interfering.  Spawned domains start with no context: a spawner that
    wants the id to follow must capture {!current_trace} and re-install
    it in the child — {!Exec.parallel_for} does, which is how a request
    id set by the service reaches [exec.worker]/[mc.trial] spans.  Works
    whether or not the span layer is enabled, so {!Log} lines pick the
    id up even when tracing is off. *)

val current_trace : unit -> string
(** The calling domain's active trace context ([""] when none). *)

val with_ : name:string -> (unit -> 'a) -> 'a

val events : unit -> event list
(** Retained events from every domain's ring, merged and sorted by
    timestamp (stable, so same-ring order survives clock ties).  Each
    ring keeps the newest [capacity] events it recorded (see
    [dropped]). *)

val dropped : unit -> int
(** Total events lost to ring wraps, summed over every ring. *)

val set_capacity : int -> unit
(** Resize every ring (discards retained events).  Default 65536 events
    per domain.  @raise Invalid_argument if the capacity is not
    positive. *)

val reset : unit -> unit
(** Drop all retained events and reset every ring's nesting depth. *)

type summary = { span_name : string; calls : int; total_ns : int64 }

val summarize : event list -> summary list
(** Per-name call counts and total inclusive time, from pairing matching
    [Begin]/[End] events with one stack per domain; sorted by name.
    Unpaired events (still-open spans, or spans whose [Begin] was lost
    to a ring wrap) are ignored and never corrupt other pairings. *)
