let bfs g src =
  if not (Graph.mem_node g src) then []
  else begin
    let seen = Hashtbl.create 64 in
    Hashtbl.add seen src ();
    let q = Queue.create () in
    Queue.add (src, 0) q;
    let out = ref [] in
    while not (Queue.is_empty q) do
      let n, d = Queue.pop q in
      out := (n, d) :: !out;
      List.iter
        (fun (m, _) ->
          if not (Hashtbl.mem seen m) then begin
            Hashtbl.add seen m ();
            Queue.add (m, d + 1) q
          end)
        (Graph.neighbors g n)
    done;
    List.rev !out
  end

let reachable g src = List.map fst (bfs g src)

let reachable_set g src =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, _) -> Hashtbl.replace tbl n ()) (bfs g src);
  tbl

let cc_calls = Obs.Metrics.counter "graph.cc_calls"

let connected_components g =
  Obs.Metrics.incr cc_calls;
  Obs.Span.with_ ~name:"graph.connected_components" @@ fun () ->
  let seen = Hashtbl.create 64 in
  let comps =
    Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
        if Hashtbl.mem seen n then acc
        else begin
          let comp = reachable g n in
          List.iter (fun m -> Hashtbl.replace seen m ()) comp;
          List.sort Int.compare comp :: acc
        end)
  in
  List.sort
    (fun a b ->
      match (a, b) with
      | x :: _, y :: _ -> Int.compare x y
      | [], _ | _, [] -> 0)
    comps

let component_sizes g =
  connected_components g |> List.map List.length
  |> List.sort (fun a b -> Int.compare b a)

let giant_component_fraction g =
  let n = Graph.nb_nodes g in
  if n = 0 then 0.0
  else
    match component_sizes g with
    | [] -> 0.0
    | largest :: _ -> float_of_int largest /. float_of_int n

let is_connected g =
  match component_sizes g with [] | [ _ ] -> true | _ -> false

let same_component g a b =
  if not (Graph.mem_node g a && Graph.mem_node g b) then false
  else if a = b then true
  else
    let tbl = reachable_set g a in
    Hashtbl.mem tbl b
