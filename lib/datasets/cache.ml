let builds = ref 0

(* One mutex over every table, held across the build itself
   (single-flight): concurrent server workers asking for the same
   dataset must get one build and one shared value, not a race that
   builds twice and doubles resident memory.  Builds are rare (a
   handful per process) and reads are one probe, so a single lock is
   plenty. *)
let mu = Mutex.create ()

let memo tbl key build =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      incr builds;
      let v = build () in
      Hashtbl.replace tbl key v;
      v

let submarine_tbl : (int, Infra.Network.t) Hashtbl.t = Hashtbl.create 4
let intertubes_tbl : (int, Infra.Network.t) Hashtbl.t = Hashtbl.create 4
let itu_tbl : (int * float, Infra.Network.t) Hashtbl.t = Hashtbl.create 4
let caida_tbl : (int * int, Caida.asys array) Hashtbl.t = Hashtbl.create 4
let dns_tbl : (int, Dns_roots.instance array) Hashtbl.t = Hashtbl.create 4
let ixp_tbl : (int, Ixp.t array) Hashtbl.t = Hashtbl.create 4

(* Defaults mirror the builders' own, so [Cache.submarine ()] and
   [Submarine.build ()] describe the same dataset. *)

let submarine ?(seed = 42) () =
  memo submarine_tbl seed (fun () -> Submarine.build ~seed ())

let intertubes ?(seed = 42) () =
  memo intertubes_tbl seed (fun () -> Intertubes.build ~seed ())

let itu ?(seed = 42) ?(scale = 1.0) () =
  memo itu_tbl (seed, scale) (fun () -> Itu.build ~seed ~scale ())

let caida ?(seed = 42) ?(ases = Caida.target_ases) () =
  memo caida_tbl (seed, ases) (fun () -> Caida.build ~seed ~ases ())

let dns_roots ?(seed = 42) () =
  memo dns_tbl seed (fun () -> Dns_roots.build ~seed ())

let ixp ?(seed = 42) () = memo ixp_tbl seed (fun () -> Ixp.build ~seed ())

let build_count () =
  Mutex.lock mu;
  let n = !builds in
  Mutex.unlock mu;
  n

let clear () =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  builds := 0;
  Hashtbl.reset submarine_tbl;
  Hashtbl.reset intertubes_tbl;
  Hashtbl.reset itu_tbl;
  Hashtbl.reset caida_tbl;
  Hashtbl.reset dns_tbl;
  Hashtbl.reset ixp_tbl
