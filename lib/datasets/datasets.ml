(** Dataset substrate: synthetic-but-calibrated replacements for every
    dataset in §4.1 of the paper (see DESIGN.md §1 for the substitution
    table), plus the world-city gazetteer they share.

    All generators are deterministic in their seed; the default seed (42)
    is what the figure harness and EXPERIMENTS.md numbers use. *)

module Cities = Cities
module Population = Population
module Submarine = Submarine
module Intertubes = Intertubes
module Itu = Itu
module Caida = Caida
module Dns_roots = Dns_roots
module Ixp = Ixp
module Datacenters = Datacenters
module Cache = Cache

let default_seed = 42
