(** Memoized dataset builds.

    The generators are deterministic in their parameters, so building the
    same dataset twice is pure waste — yet the CLI subcommands and the
    examples historically called [Submarine.build] independently up to six
    times per process.  Each function here returns the same physical value
    for the same parameters, building at most once per [(params)] key.

    The cache is per-process and unbounded; keys are the full parameter
    tuples, so differently-parameterized builds never collide.  Safe to
    call from concurrent domains: one mutex guards the tables and is
    held across the build (single-flight), so two workers asking for
    the same dataset share one build and one physical value. *)

val submarine : ?seed:int -> unit -> Infra.Network.t
val intertubes : ?seed:int -> unit -> Infra.Network.t
val itu : ?seed:int -> ?scale:float -> unit -> Infra.Network.t
val caida : ?seed:int -> ?ases:int -> unit -> Caida.asys array
val dns_roots : ?seed:int -> unit -> Dns_roots.instance array
val ixp : ?seed:int -> unit -> Ixp.t array

val build_count : unit -> int
(** Number of underlying builds performed so far (cache misses) — a test
    hook for asserting the memoization actually memoizes. *)

val clear : unit -> unit
(** Drop every cached dataset (and zero {!build_count}).  Tests only. *)
