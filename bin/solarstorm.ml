(* solarstorm — command-line front end for the solar-superstorm Internet
   resilience simulator.

     solarstorm figures            regenerate paper figures (all or --id)
     solarstorm map                ASCII world map of a network
     solarstorm simulate           Monte-Carlo failure sweep
     solarstorm scenario           end-to-end CME scenario
     solarstorm countries          country-scale case studies
     solarstorm systems            AS / data-center / DNS analysis
     solarstorm mitigate           shutdown + augmentation + partitions
     solarstorm probability        occurrence-probability table
     solarstorm serve              long-running HTTP simulation service
     solarstorm loadgen            hammer a live server, report req/s + tails *)

open Cmdliner

let ctx_of ~seed ~itu_scale ~caida_ases =
  Report.Figures.make_context ~seed ~itu_scale ~caida_ases ()

(* Shared options. *)
let seed_t =
  Arg.(value & opt int Datasets.default_seed & info [ "seed" ] ~doc:"Dataset seed.")

let trials_t = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Monte-Carlo trials.")

let itu_scale_t =
  Arg.(value & opt float 0.3 & info [ "itu-scale" ] ~doc:"ITU network scale in (0, 1].")

let caida_t =
  Arg.(value & opt int 8000 & info [ "ases" ] ~doc:"Number of synthetic ASes.")

let out_dir_t =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
         ~doc:"Also write figure data as CSV files under $(docv).")

let markdown_t =
  Arg.(value & opt (some string) None & info [ "markdown" ] ~docv:"FILE"
         ~doc:"Also write all rendered figures to $(docv) as markdown.")

(* Parallelism: --jobs lands in Exec's process-wide default once at
   startup, so every Monte-Carlo consumer deep in the figure pipeline
   picks it up without threading a parameter through each call.  Output
   is byte-identical for any job count (Plan.run_trials_par pre-splits
   trial RNGs and merges in trial order). *)
let jobs_t =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for Monte-Carlo trials (default: \
                 $(b,SOLARSTORM_JOBS) when set, else 1).  Results are \
                 byte-identical for any $(docv).")

(* Observability plumbing, shared by every subcommand:
   --metrics/--trace/--profile switch the Obs layer on for the duration
   of the command and dump the collected data afterwards; --progress
   turns on the live trial meter (stderr only).  Without any of them the
   layer stays off and output is byte-identical to an uninstrumented
   build. *)
let metrics_t =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write a metrics + span summary table to $(docv) after the run \
               ($(b,-) = stderr).")

let trace_t =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the span trace as JSONL (one event per line) to $(docv) \
               ($(b,-) = stderr).")

let profile_t =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Write a Chrome/Perfetto trace-event JSON profile to $(docv) \
               ($(b,-) = stderr); one timeline row per worker domain.  Load \
               in ui.perfetto.dev or chrome://tracing.")

let progress_t =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Render a live $(b,done/total, trials/s, ETA) meter for \
               Monte-Carlo trial loops on stderr.  Stdout stays \
               byte-identical.")

let log_t =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
         ~doc:"Write structured JSONL logs (one JSON object per line) to \
               $(docv) ($(b,-) = stderr).  Independent of the other \
               observability switches; stdout stays byte-identical.")

let write_dump dst content =
  match dst with
  | "-" ->
      output_string stderr content;
      flush stderr
  | path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc

(* --log: route Obs.Log at a file (or stderr) for the duration of [run].
   The sink flushes per line so a crash loses at most the line being
   written. *)
let with_log log run =
  match log with
  | None -> run ()
  | Some dst ->
      let sink, cleanup =
        match dst with
        | "-" -> ((fun s -> output_string stderr s; flush stderr), fun () -> ())
        | path ->
            let oc = open_out path in
            ((fun s -> output_string oc s; flush oc), fun () -> close_out oc)
      in
      Obs.Log.set_sink sink;
      Obs.Log.enable ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Log.disable ();
          cleanup ())
        run

let with_obs ~cmd jobs progress metrics trace profile log run =
  Option.iter Exec.set_default_jobs jobs;
  if progress then Obs.Progress.enable ();
  with_log log @@ fun () ->
  Obs.Log.info "cmd.start" [ ("cmd", Obs.Json.String cmd) ];
  let t0 = Obs.Span.now () in
  let finish () =
    Obs.Log.info "cmd.done"
      [
        ("cmd", Obs.Json.String cmd);
        ( "dur_ms",
          Obs.Json.Number (Int64.to_float (Int64.sub (Obs.Span.now ()) t0) /. 1e6) );
      ]
  in
  if metrics = None && trace = None && profile = None then begin
    run ();
    finish ()
  end
  else begin
    Obs.enable ();
    run ();
    Obs.Resource.sample ();
    Option.iter
      (fun dst ->
        write_dump dst
          (Report.Obs_report.render ~events:(Obs.Span.events ()) (Obs.Metrics.snapshot ())))
      metrics;
    Option.iter (fun dst -> write_dump dst (Obs.Export.jsonl (Obs.Span.events ()))) trace;
    Option.iter
      (fun dst -> write_dump dst (Obs.Export.chrome_trace (Obs.Span.events ())))
      profile;
    finish ()
  end

let obs_args term =
  Cmdliner.Term.(term $ jobs_t $ progress_t $ metrics_t $ trace_t $ profile_t $ log_t)

(* figures *)
let figures_cmd =
  let id_t =
    Arg.(value & opt (some string) None & info [ "id" ] ~doc:"Only this figure id.")
  in
  let run seed trials itu_scale caida_ases id out_dir markdown jobs progress metrics trace profile log =
    with_obs ~cmd:"figures" jobs progress metrics trace profile log @@ fun () ->
    let ctx = ctx_of ~seed ~itu_scale ~caida_ases in
    let all = Report.Figures.all ~trials ctx in
    (* Validate the id before any side effect: a failed invocation must not
       clobber the --markdown output file. *)
    let selected =
      match id with
      | None -> all
      | Some id -> List.filter (fun (fid, _) -> fid = id) all
    in
    if selected = [] then (
      Printf.eprintf "unknown figure id; known: %s\n"
        (String.concat ", " (List.map fst all));
      exit 1);
    (match markdown with
    | Some path ->
        Report.Markdown.write_results ~path all;
        Printf.printf "markdown written to %s\n" path
    | None -> ());
    List.iter (fun (fid, text) -> Printf.printf "----- %s -----\n%s\n" fid text) selected;
    (match out_dir with
    | None -> ()
    | Some dir ->
        (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
        let series_csv () =
          let fig3 = Stormsim.Distribution.fig3 ~submarine:(Report.Figures.submarine ctx) in
          List.iter
            (fun (s : Stormsim.Distribution.pdf_series) ->
              Report.Csv.write_file
                ~path:(Filename.concat dir (Printf.sprintf "fig3-%s.csv" s.label))
                (Report.Csv.of_series ~header:("latitude", "density_pct") s.points))
            fig3;
          let fig5 =
            Stormsim.Distribution.fig5 ~submarine:(Report.Figures.submarine ctx)
              ~intertubes:(Report.Figures.intertubes ctx) ~itu:(Report.Figures.itu ctx)
          in
          List.iter
            (fun (s : Stormsim.Distribution.cdf_series) ->
              Report.Csv.write_file
                ~path:(Filename.concat dir (Printf.sprintf "fig5-%s.csv" s.label))
                (Report.Csv.of_series ~header:("length_km", "cdf") s.points))
            fig5
        in
        series_csv ();
        Printf.printf "CSV series written to %s\n" dir)
  in
  let term =
    obs_args
      Term.(const run $ seed_t $ trials_t $ itu_scale_t $ caida_t $ id_t $ out_dir_t
            $ markdown_t)
  in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures") term

(* map *)
let network_conv =
  Arg.enum [ ("submarine", `Submarine); ("intertubes", `Intertubes); ("itu", `Itu) ]

let map_cmd =
  let net_t =
    Arg.(value & opt network_conv `Submarine & info [ "network" ] ~doc:"Network to draw.")
  in
  let run seed net jobs progress metrics trace profile log =
    with_obs ~cmd:"map" jobs progress metrics trace profile log @@ fun () ->
    let network =
      match net with
      | `Submarine -> Datasets.Cache.submarine ~seed ()
      | `Intertubes -> Datasets.Cache.intertubes ~seed ()
      | `Itu -> Datasets.Cache.itu ~seed ~scale:0.1 ()
    in
    print_string (Report.Worldmap.render (Report.Worldmap.network_layers network))
  in
  Cmd.v (Cmd.info "map" ~doc:"ASCII world map of a network")
    (obs_args Term.(const run $ seed_t $ net_t))

(* simulate *)
let model_conv : Stormsim.Failure_model.t Arg.conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Stormsim.Failure_model.of_string s)
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Stormsim.Failure_model.to_string m))

(* --json: render through the same Server.Api compute + encode path the
   HTTP service uses, so the bytes match a serve response for the same
   parameters exactly. *)
let json_t =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the result as one compact JSON document — byte-identical \
               to the $(b,serve) endpoint's response body for the same \
               parameters.")

let api_network = function
  | `Submarine -> Server.Api.Submarine
  | `Intertubes -> Server.Api.Intertubes
  | `Itu -> Server.Api.Itu

let simulate_cmd =
  let model_t =
    Arg.(value & opt model_conv (Stormsim.Failure_model.uniform 0.01)
         & info [ "model" ] ~doc:"s1 | s2 | physical | uniform probability.")
  in
  let spacing_t =
    Arg.(value & opt float 150.0 & info [ "spacing" ] ~doc:"Inter-repeater distance (km).")
  in
  let net_t =
    Arg.(value & opt network_conv `Submarine & info [ "network" ] ~doc:"Network.")
  in
  let run seed trials itu_scale model spacing net json jobs progress metrics trace profile log =
    with_obs ~cmd:"simulate" jobs progress metrics trace profile log @@ fun () ->
    if json then
      print_string
        (Server.Api.simulate_body
           { Server.Api.network = api_network net; model; spacing_km = spacing;
             itu_scale; seed; trials })
    else begin
      let name, network =
        match net with
        | `Submarine -> ("submarine", Datasets.Cache.submarine ~seed ())
        | `Intertubes -> ("intertubes", Datasets.Cache.intertubes ~seed ())
        | `Itu -> ("itu", Datasets.Cache.itu ~seed ~scale:itu_scale ())
      in
      let s =
        Stormsim.Montecarlo.run ~trials ~seed ~network ~spacing_km:spacing ~model ()
      in
      Printf.printf "%s under %s at %.0f km spacing (%d trials):\n" name
        (Stormsim.Failure_model.to_string model) spacing trials;
      Printf.printf "  cables failed     %.1f%% +- %.1f\n" s.Stormsim.Montecarlo.cables_mean
        s.Stormsim.Montecarlo.cables_std;
      Printf.printf "  nodes unreachable %.1f%% +- %.1f\n" s.Stormsim.Montecarlo.nodes_mean
        s.Stormsim.Montecarlo.nodes_std
    end
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Monte-Carlo failure simulation")
    (obs_args
       Term.(const run $ seed_t $ trials_t $ itu_scale_t $ model_t $ spacing_t $ net_t
             $ json_t))

(* sweep *)
let sweep_cmd =
  let axis_t =
    Arg.(value & opt_all string []
         & info [ "axis"; "a" ] ~docv:"KEY=V1,V2,..."
             ~doc:"Grid axis: one of $(b,network), $(b,model), \
                   $(b,spacing_km), $(b,itu_scale), $(b,seed), \
                   $(b,trials) with a comma-separated value list.  \
                   Repeatable; the first axis varies slowest.  Without \
                   any axis the grid is the single all-defaults cell.")
  in
  let run axes jobs progress metrics trace profile log =
    let parsed =
      List.map
        (fun spec ->
          match Stormsim.Sweep.axis_of_spec spec with
          | Ok axis -> axis
          | Error msg ->
              Printf.eprintf "sweep: --axis %s\n" msg;
              exit 2)
        axes
    in
    let cells =
      match Stormsim.Sweep.expand parsed with
      | Ok cells -> cells
      | Error msg ->
          Printf.eprintf "sweep: %s\n" msg;
          exit 2
    in
    with_obs ~cmd:"sweep" jobs progress metrics trace profile log @@ fun () ->
    (* One JSONL row per cell, flushed as produced so downstream pipes
       see results stream in — the same bytes POST /sweep chunks. *)
    let summary =
      Stormsim.Sweep.run ~cells ()
        ~emit:(fun row ->
          print_string (Stormsim.Sweep.row_line row);
          flush stdout)
    in
    Printf.eprintf "sweep: %d cells, %d rows, %d plans compiled, %d batches\n"
      summary.Stormsim.Sweep.cells summary.Stormsim.Sweep.rows
      summary.Stormsim.Sweep.plans_compiled summary.Stormsim.Sweep.batches
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Expand a parameter grid and stream one JSONL result row per \
             cell to stdout.  Axes combine as a cartesian product; cells \
             that compile to the same simulation plan share one compiled \
             plan, and cells that also share seed and trial count share \
             one trial batch.  Output is byte-identical for any \
             $(b,--jobs) count and to the $(b,POST /sweep) endpoint's \
             de-chunked body for the same grid.  A summary line \
             (cells/rows/plans/batches) goes to stderr.")
    (obs_args Term.(const run $ axis_t))

(* scenario *)
let scenario_cmd =
  let event_t =
    Arg.(value & opt (some string) (Some "carrington")
         & info [ "event" ] ~doc:"Historical event name (catalog lookup).")
  in
  let speed_t =
    Arg.(value & opt (some float) None
         & info [ "speed" ] ~doc:"Custom CME launch speed (km/s), overrides --event.")
  in
  let physical_t =
    Arg.(value & flag & info [ "physical" ] ~doc:"Also run the GIC-physical model.")
  in
  let run seed trials event speed physical json jobs progress metrics trace profile log =
    with_obs ~cmd:"scenario" jobs progress metrics trace profile log @@ fun () ->
    if json then begin
      let source =
        match speed with
        | Some v -> Server.Api.Speed v
        | None -> Server.Api.Event (Option.value ~default:"carrington" event)
      in
      match
        Server.Api.scenario_body
          { Server.Api.source; sc_seed = seed; sc_trials = trials; physical }
      with
      | Ok body -> print_string body
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
    end
    else begin
      let networks =
        [ ("submarine", Datasets.Cache.submarine ~seed ());
          ("intertubes", Datasets.Cache.intertubes ~seed ()) ]
      in
      let cme =
        match speed with
        | Some v -> Spaceweather.Cme.make ~speed_km_s:v ()
        | None -> (
            let name = Option.value ~default:"carrington" event in
            match Spaceweather.Storm_catalog.find name with
            | Some e -> e.Spaceweather.Storm_catalog.cme
            | None ->
                Printf.eprintf "unknown event %s\n" name;
                exit 1)
      in
      let s = Stormsim.Scenario.run ~trials ~use_physical:physical ~cme ~networks () in
      Format.printf "%a@." Stormsim.Scenario.pp s
    end
  in
  Cmd.v (Cmd.info "scenario" ~doc:"End-to-end CME impact scenario")
    (obs_args
       Term.(const run $ seed_t $ trials_t $ event_t $ speed_t $ physical_t $ json_t))

(* countries *)
let countries_cmd =
  let run seed trials json jobs progress metrics trace profile log =
    with_obs ~cmd:"countries" jobs progress metrics trace profile log @@ fun () ->
    if json then
      print_string
        (Server.Api.countries_body { Server.Api.co_seed = seed; co_trials = trials })
    else begin
      let net = Datasets.Cache.submarine ~seed () in
      let findings = Stormsim.Country.run_all ~trials net in
      List.iter
        (fun (f : Stormsim.Country.finding) ->
          Printf.printf "%-24s %-3s P(loss)=%.2f  (%d cables)  %s\n"
            f.Stormsim.Country.spec.Stormsim.Country.id
            f.Stormsim.Country.spec.Stormsim.Country.state_name
            f.Stormsim.Country.loss_probability f.Stormsim.Country.direct_cables
            f.Stormsim.Country.spec.Stormsim.Country.expectation)
        findings
    end
  in
  Cmd.v (Cmd.info "countries" ~doc:"Country-scale connectivity case studies")
    (obs_args Term.(const run $ seed_t $ trials_t $ json_t))

(* systems *)
let systems_cmd =
  let run seed caida_ases jobs progress metrics trace profile log =
    with_obs ~cmd:"systems" jobs progress metrics trace profile log @@ fun () ->
    let ctx = ctx_of ~seed ~itu_scale:0.05 ~caida_ases in
    print_string (Report.Figures.systems ctx)
  in
  Cmd.v (Cmd.info "systems" ~doc:"AS / data-center / DNS resilience")
    (obs_args Term.(const run $ seed_t $ caida_t))

(* mitigate *)
let mitigate_cmd =
  let run seed jobs progress metrics trace profile log =
    with_obs ~cmd:"mitigate" jobs progress metrics trace profile log @@ fun () ->
    let ctx = ctx_of ~seed ~itu_scale:0.05 ~caida_ases:1000 in
    print_string (Report.Figures.mitigation ctx)
  in
  Cmd.v (Cmd.info "mitigate" ~doc:"Shutdown, augmentation and partition planning")
    (obs_args Term.(const run $ seed_t))

(* leo *)
let leo_cmd =
  let dst_t =
    Arg.(value & opt float (-1200.0) & info [ "dst" ] ~doc:"Storm Dst (nT, negative).")
  in
  let batch_t =
    Arg.(value & opt (some float) None
         & info [ "batch" ] ~docv:"ALT" ~doc:"Also assess an injection batch parked at ALT km.")
  in
  let run dst batch jobs progress metrics trace profile log =
    with_obs ~cmd:"leo" jobs progress metrics trace profile log @@ fun () ->
    let r =
      Leo.Storm_impact.assess ?injection_batch:batch ~dst_nt:dst
        Leo.Constellation.starlink_phase1
    in
    Format.printf "%a@." Leo.Storm_impact.pp r
  in
  Cmd.v (Cmd.info "leo" ~doc:"Storm impact on a LEO mega-constellation")
    (obs_args Term.(const run $ dst_t $ batch_t))

(* decision *)
let decision_cmd =
  let event_t =
    Arg.(value & opt string "carrington" & info [ "event" ] ~doc:"Historical event name.")
  in
  let run seed event jobs progress metrics trace profile log =
    with_obs ~cmd:"decision" jobs progress metrics trace profile log @@ fun () ->
    match Spaceweather.Storm_catalog.find event with
    | None ->
        Printf.eprintf "unknown event %s\n" event;
        exit 1
    | Some e ->
        let net = Datasets.Cache.submarine ~seed () in
        let d =
          Stormsim.Mitigation.shutdown_decision ~cme:e.Spaceweather.Storm_catalog.cme
            ~network:net ()
        in
        Printf.printf
          "severe window %.1f h; failure fraction %.2f powered vs %.2f off; expected downtime %.1f d powered vs %.1f d with shutdown -> %s\n"
          d.Stormsim.Mitigation.storm_window_h d.Stormsim.Mitigation.failure_fraction_powered
          d.Stormsim.Mitigation.failure_fraction_off d.Stormsim.Mitigation.downtime_powered_days
          d.Stormsim.Mitigation.downtime_off_days
          (if d.Stormsim.Mitigation.recommended then "DE-POWER" else "STAY POWERED")
  in
  Cmd.v (Cmd.info "decision" ~doc:"Shutdown decision for a storm (5.2)")
    (obs_args Term.(const run $ seed_t $ event_t))

(* serve *)
let serve_cmd =
  let port_t =
    Arg.(value & opt int 8080
         & info [ "port"; "p" ] ~docv:"PORT"
             ~doc:"TCP port to listen on (0 = OS-assigned ephemeral port; the \
                   bound port is printed on startup).")
  in
  let host_t =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let cache_t =
    Arg.(value & opt int 128
         & info [ "cache-entries" ] ~docv:"N"
             ~doc:"Result-cache capacity: how many distinct request results are \
                   kept (LRU).  0 disables the cache.")
  in
  let max_body_t =
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-body" ] ~docv:"BYTES"
             ~doc:"Largest accepted request body; bigger requests get 413.")
  in
  let max_pending_t =
    Arg.(value & opt int 64
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Connections held at once; the overflow is answered 503 \
                   immediately (backpressure instead of an unbounded queue).")
  in
  let timeout_t =
    Arg.(value & opt float 5.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"How long a peer may stall mid-request before it gets 408.")
  in
  let trace_seed_t =
    Arg.(value & opt (some int) None
         & info [ "trace-seed" ] ~docv:"N"
             ~doc:"Seed the per-request trace-id stream so the n-th request \
                   gets the same $(b,X-Trace-Id) on every run (tests, CI).  \
                   Default: seeded from wall clock and pid.")
  in
  let workers_t =
    Arg.(value & opt int 0
         & info [ "workers"; "w" ] ~docv:"N"
             ~doc:"Worker domains serving requests in parallel (responses are \
                   byte-identical for any count).  0 (default) follows \
                   $(b,--jobs)/$(b,SOLARSTORM_JOBS), else 1.")
  in
  let slo_t =
    Arg.(value & opt_all string []
         & info [ "slo" ] ~docv:"RULE"
             ~doc:"SLO alert rule, $(b,METRIC:CONDITION:WINDOW) — e.g. \
                   $(b,server.request.ms:p99<50:5m) (windowed p99 must stay \
                   under 50 ms over 5 minutes) or \
                   $(b,server.requests:rate>1:1m).  Repeatable.  Rules are \
                   evaluated every sampler step with burn-rate \
                   (long + short window) semantics; transitions land in the \
                   $(b,--log) JSONL and $(b,GET /alertz).")
  in
  let sampler_step_t =
    Arg.(value & opt float 1.0
         & info [ "sampler-step" ] ~docv:"SECONDS"
             ~doc:"Self-monitoring sampling step: how often a metrics snapshot \
                   is frozen into the $(b,/varz) ring and SLO rules are \
                   evaluated.  0 disables the background sampler ($(b,/varz) \
                   still samples on scrape).")
  in
  let retention_t =
    Arg.(value & opt int 600
         & info [ "retention" ] ~docv:"N"
             ~doc:"Self-monitoring ring capacity in samples (window queries \
                   can look back at most $(docv) steps).")
  in
  let run port host workers cache_entries max_body max_pending read_timeout trace_seed
      slo sampler_step retention log profile jobs =
    Option.iter Exec.set_default_jobs jobs;
    if workers < 0 then begin
      Printf.eprintf "serve: --workers must be >= 0\n";
      exit 2
    end;
    if cache_entries < 0 then begin
      Printf.eprintf "serve: --cache-entries must be >= 0\n";
      exit 2
    end;
    if max_body <= 0 || max_pending <= 0 || read_timeout <= 0.0 then begin
      Printf.eprintf "serve: --max-body, --max-pending and --read-timeout must be positive\n";
      exit 2
    end;
    if sampler_step < 0.0 then begin
      Printf.eprintf "serve: --sampler-step must be >= 0\n";
      exit 2
    end;
    if retention < 2 then begin
      Printf.eprintf "serve: --retention must be >= 2\n";
      exit 2
    end;
    let slo_rules =
      List.map
        (fun src ->
          match Obs.Alerts.parse_rule src with
          | Ok rule -> rule
          | Error msg ->
              Printf.eprintf "serve: --slo %s\n" msg;
              exit 2)
        slo
    in
    (* The service's whole point is live /metrics, so the obs layer is
       always on; the progress meter is forced off so nothing paints
       carriage returns into the server log. *)
    Obs.Progress.disable ();
    Obs.enable ();
    with_log log @@ fun () ->
    Server.Api.set_cache_capacity cache_entries;
    Server.Service.install_signal_handlers ();
    Server.Service.run
      { Server.Service.default_config with
        Server.Service.host; port; workers; max_pending; max_body;
        read_timeout_s = read_timeout; trace_seed;
        sampler_step_s = sampler_step; slo_rules; retention };
    (* After the drain: every request span (tagged with its trace id) is
       still in the rings, so the profile covers the whole serving run. *)
    Option.iter
      (fun dst -> write_dump dst (Obs.Export.chrome_trace (Obs.Span.events ())))
      profile
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running HTTP simulation service (GET /healthz, GET /metrics, \
             GET /statusz, POST /simulate, POST /scenario, POST /countries, \
             POST /sweep streamed as chunked JSONL).  \
             Datasets and compiled plans are built once and shared across \
             requests; identical requests are served byte-identically from an \
             LRU result cache.  Every response carries an $(b,X-Trace-Id) \
             header; $(b,--log) adds one access-log line per request with the \
             same id.  $(b,--workers) spreads requests over a pool of domains \
             with byte-identical responses.  A background sampler feeds the \
             windowed self-monitoring surface ($(b,GET /varz), \
             $(b,GET /alertz), $(b,GET /dashboard)); $(b,--slo) rules alert \
             on it.  SIGINT/SIGTERM drain in-flight requests across all \
             workers and exit 0.")
    Term.(const run $ port_t $ host_t $ workers_t $ cache_t $ max_body_t
          $ max_pending_t $ timeout_t $ trace_seed_t $ slo_t $ sampler_step_t
          $ retention_t $ log_t $ profile_t $ jobs_t)

(* loadgen *)
let loadgen_cmd =
  let url_t =
    Arg.(required & opt (some string) None
         & info [ "url" ] ~docv:"URL"
             ~doc:"Target endpoint, $(b,http://HOST:PORT/PATH) (a live \
                   $(b,solarstorm serve) instance).")
  in
  let connections_t =
    Arg.(value & opt int 4
         & info [ "connections"; "c" ] ~docv:"N"
             ~doc:"Concurrent keep-alive connections (one domain each).")
  in
  let requests_t =
    Arg.(value & opt int 200
         & info [ "requests"; "n" ] ~docv:"N"
             ~doc:"Total requests, spread evenly over the connections.")
  in
  let body_t =
    Arg.(value & opt (some string) None
         & info [ "body" ] ~docv:"JSON"
             ~doc:"Request body: sends $(b,POST) $(docv) (empty string for \
                   all-defaults).  Without it requests are $(b,GET).")
  in
  let body_file_t =
    Arg.(value & opt (some string) None
         & info [ "body-file" ] ~docv:"FILE"
             ~doc:"Read the $(b,POST) body from $(docv) instead of the \
                   command line (grid objects for $(b,/sweep) targets).  \
                   Mutually exclusive with $(b,--body).")
  in
  let pipeline_t =
    Arg.(value & opt int 1
         & info [ "pipeline" ] ~docv:"DEPTH"
             ~doc:"Requests kept in flight per connection (HTTP/1.1 \
                   pipelining); 1 = strict request/response.")
  in
  let warmup_t =
    Arg.(value & opt int 0
         & info [ "warmup" ] ~docv:"N"
             ~doc:"Per-connection warmup requests driven before measurement: \
                   their latencies and bytes are excluded from the quantiles \
                   and the bench document (connection setup and cold caches \
                   land there).")
  in
  let run url connections requests body body_file pipeline warmup =
    if connections <= 0 || requests <= 0 || pipeline <= 0 then begin
      Printf.eprintf "loadgen: --connections, --requests and --pipeline must be positive\n";
      exit 2
    end;
    if warmup < 0 then begin
      Printf.eprintf "loadgen: --warmup must be >= 0\n";
      exit 2
    end;
    let body =
      match (body, body_file) with
      | Some _, Some _ ->
          Printf.eprintf "loadgen: --body and --body-file are mutually exclusive\n";
          exit 2
      | Some _, None -> body
      | None, Some path -> (
          match In_channel.with_open_bin path In_channel.input_all with
          | contents -> Some contents
          | exception Sys_error msg ->
              Printf.eprintf "loadgen: --body-file: %s\n" msg;
              exit 2)
      | None, None -> None
    in
    match Server.Loadgen.parse_url url with
    | Error msg ->
        Printf.eprintf "loadgen: %s\n" msg;
        exit 2
    | Ok target ->
        let r = Server.Loadgen.run ~connections ~pipeline ~warmup ~requests ~body target in
        prerr_string (Server.Loadgen.summary r);
        print_string (Server.Loadgen.to_bench_json r);
        if r.Server.Loadgen.errors > 0 || r.Server.Loadgen.requests = 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Hammer a live server over loopback and report throughput.  \
             Stdout is a $(b,solarstorm-bench/1) JSON document (latency \
             mean/p50/p95/p99 as kernels, req/s under metrics); a human \
             summary line goes to stderr.  $(b,--warmup) excludes each \
             connection's first responses from the figures.  Chunked \
             responses (e.g. a $(b,/sweep) target, body from \
             $(b,--body-file)) are decoded in-line; first-row latency \
             lands in the $(b,loadgen.ttfb-*) kernels.  Exits 1 if any \
             request failed.")
    Term.(const run $ url_t $ connections_t $ requests_t $ body_t $ body_file_t
          $ pipeline_t $ warmup_t)

(* top *)
let top_cmd =
  let host_t =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_t =
    Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let window_t =
    Arg.(value & opt string "60s"
         & info [ "window" ] ~docv:"WINDOW"
             ~doc:"Lookback window passed to $(b,/varz) (e.g. 30s, 5m).")
  in
  let interval_t =
    Arg.(value & opt float 2.0
         & info [ "interval"; "i" ] ~docv:"SECONDS" ~doc:"Seconds between repaints.")
  in
  let count_t =
    Arg.(value & opt (some int) None
         & info [ "count" ] ~docv:"N"
             ~doc:"Render $(docv) frames and exit (default: run until killed) — \
                   $(b,--count 1) is a one-shot snapshot for scripts.")
  in
  let run host port window interval count =
    if interval <= 0.0 then begin
      Printf.eprintf "top: --interval must be positive\n";
      exit 2
    end;
    (match count with
    | Some n when n <= 0 ->
        Printf.eprintf "top: --count must be positive\n";
        exit 2
    | _ -> ());
    (match Obs.Alerts.parse_window window with
    | Ok _ -> ()
    | Error msg ->
        Printf.eprintf "top: --window: %s\n" msg;
        exit 2);
    match Server.Top.run ~host ~port ~window ~interval_s:interval ~count () with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "top: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal view of a running $(b,solarstorm serve): polls \
             $(b,/statusz) and $(b,/varz) every $(b,--interval) seconds and \
             repaints request rate, windowed latency quantiles (with \
             sparklines), cache and alert state.  The screen is only cleared \
             on a real terminal; redirected output is plain frames.")
    Term.(const run $ host_t $ port_t $ window_t $ interval_t $ count_t)

(* probability *)
let probability_cmd =
  let run () jobs progress metrics trace profile log =
    with_obs ~cmd:"probability" jobs progress metrics trace profile log @@ fun () -> print_string (Report.Figures.probability ())
  in
  Cmd.v (Cmd.info "probability" ~doc:"Occurrence-probability table")
    (obs_args Term.(const run $ const ()))

let main_cmd =
  let doc = "solar-superstorm Internet resilience simulator (SIGCOMM '21 reproduction)" in
  Cmd.group (Cmd.info "solarstorm" ~version:Server.Handlers.version ~doc)
    [ figures_cmd; map_cmd; simulate_cmd; sweep_cmd; scenario_cmd; countries_cmd;
      systems_cmd; mitigate_cmd; probability_cmd; leo_cmd; decision_cmd; serve_cmd;
      loadgen_cmd; top_cmd ]

let () = exit (Cmd.eval main_cmd)
