#!/bin/sh
# CI gate: build, run the test suites, and prove the bench harness emits a
# well-formed perf-trajectory document.  Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build examples =="
dune build examples

echo "== dune runtest (SOLARSTORM_JOBS=2) =="
# Two worker domains for every Monte-Carlo consumer that doesn't pin
# ~jobs: the golden suites then prove the parallel engine reproduces the
# sequential byte-for-byte, on every CI run.
SOLARSTORM_JOBS=2 dune runtest --force

BENCH_JSON="${BENCH_JSON:-/tmp/bench.json}"
rm -f "$BENCH_JSON"

echo "== bench --fast --json $BENCH_JSON =="
dune exec bench/main.exe -- --fast --json "$BENCH_JSON" > /dev/null

test -s "$BENCH_JSON" || { echo "check.sh: $BENCH_JSON missing or empty" >&2; exit 1; }

# Structural sanity without assuming a JSON parser is installed: the
# document must be one object carrying the schema marker, a non-empty
# kernel list with timings, and a metrics object.
for needle in '"schema":"solarstorm-bench/1"' '"kernels":[{' '"ns_per_run":' '"metrics":{' \
              '"name":"plan.compile"' '"name":"plan.sample"' '"name":"plan.sample-recompute"' \
              '"name":"plan.trials-seq"' '"name":"plan.trials-par1"' '"name":"plan.trials-par4"'; do
  grep -q -F "$needle" "$BENCH_JSON" \
    || { echo "check.sh: $BENCH_JSON malformed (missing $needle)" >&2; exit 1; }
done
case "$(head -c 1 "$BENCH_JSON")" in
  '{') ;;
  *) echo "check.sh: $BENCH_JSON does not start with '{'" >&2; exit 1 ;;
esac

# When python3 happens to be available, do a real parse too.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$BENCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "solarstorm-bench/1", "bad schema"
assert doc["kernels"] and all("ns_per_run" in k for k in doc["kernels"]), "bad kernels"
assert isinstance(doc["metrics"], dict), "bad metrics"
names = {k["name"] for k in doc["kernels"]}
for required in ("plan.compile", "plan.sample", "plan.sample-recompute",
                 "plan.trials-seq", "plan.trials-par1", "plan.trials-par4"):
    assert required in names, f"missing kernel {required}"
EOF
fi

echo "check.sh: all green ($BENCH_JSON ok)"
