#!/bin/sh
# CI gate: build, run the test suites, and prove the bench harness emits a
# well-formed perf-trajectory document.  Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build examples =="
dune build examples

echo "== dune runtest (SOLARSTORM_JOBS=2) =="
# Two worker domains for every Monte-Carlo consumer that doesn't pin
# ~jobs: the golden suites then prove the parallel engine reproduces the
# sequential byte-for-byte, on every CI run.
SOLARSTORM_JOBS=2 dune runtest --force

BENCH_JSON="${BENCH_JSON:-/tmp/bench.json}"
rm -f "$BENCH_JSON"

echo "== bench --fast --json $BENCH_JSON (self-baseline gate) =="
# Comparing a run against its own output is the deterministic exit-0 path
# of the regression gate: every delta is exactly +0.0%.
dune exec bench/main.exe -- --fast --json "$BENCH_JSON" --baseline "$BENCH_JSON" > /dev/null

test -s "$BENCH_JSON" || { echo "check.sh: $BENCH_JSON missing or empty" >&2; exit 1; }

# Structural sanity without assuming a JSON parser is installed: the
# document must be one object carrying the schema marker, a non-empty
# kernel list with timings, and a metrics object.
for needle in '"schema":"solarstorm-bench/1"' '"recommended_domain_count":' \
              '"kernels":[{' '"ns_per_run":' '"metrics":{' \
              '"name":"plan.compile"' '"name":"plan.sample"' '"name":"plan.sample-recompute"' \
              '"name":"plan.trials-seq"' '"name":"plan.trials-par1"' '"name":"plan.trials-par4"' \
              '"name":"sweep.grid-seq"' '"name":"sweep.grid-par4"' \
              '"name":"serve.parse-request"' '"name":"serve.request-cached"' \
              '"name":"serve.metrics-render"' '"name":"serve.throughput"' \
              '"name":"serve.throughput-par"' '"name":"obs.timeseries-sample"'; do
  grep -q -F "$needle" "$BENCH_JSON" \
    || { echo "check.sh: $BENCH_JSON malformed (missing $needle)" >&2; exit 1; }
done
case "$(head -c 1 "$BENCH_JSON")" in
  '{') ;;
  *) echo "check.sh: $BENCH_JSON does not start with '{'" >&2; exit 1 ;;
esac

# When python3 happens to be available, do a real parse too.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$BENCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "solarstorm-bench/1", "bad schema"
assert isinstance(doc["recommended_domain_count"], int) \
    and doc["recommended_domain_count"] >= 1, "bad recommended_domain_count"
assert doc["kernels"] and all("ns_per_run" in k for k in doc["kernels"]), "bad kernels"
assert isinstance(doc["metrics"], dict), "bad metrics"
names = {k["name"] for k in doc["kernels"]}
for required in ("plan.compile", "plan.sample", "plan.sample-recompute",
                 "plan.trials-seq", "plan.trials-par1", "plan.trials-par4",
                 "sweep.grid-seq", "sweep.grid-par4",
                 "serve.parse-request", "serve.request-cached", "serve.metrics-render",
                 "serve.throughput", "serve.throughput-par", "obs.timeseries-sample"):
    assert required in names, f"missing kernel {required}"
EOF
fi

echo "== bench regression gate: injected 2x slowdown must trip =="
# Scaling the baseline by 0.5 makes every kernel look exactly 2x slower
# than baseline — the gate must exit non-zero, deterministically.
if dune exec bench/main.exe -- --fast --json /tmp/bench_regress.json \
     --baseline "$BENCH_JSON" --baseline-scale 0.5 > /dev/null 2>&1; then
  echo "check.sh: bench --baseline missed an injected 2x regression" >&2
  exit 1
fi
rm -f /tmp/bench_regress.json

echo "== bench regression gate: committed baseline =="
# Gate against the committed baseline with a lenient threshold: CI
# machines differ from the one that seeded BENCH_baseline.json, so this
# catches order-of-magnitude regressions, not noise.  Tune with
# BENCH_GATE_THRESHOLD (percent).
if [ ! -f BENCH_baseline.json ]; then
  echo "check.sh: seeding BENCH_baseline.json (commit it)"
  cp "$BENCH_JSON" BENCH_baseline.json
fi
dune exec bench/main.exe -- --fast --json /tmp/bench_gate.json \
  --baseline BENCH_baseline.json --threshold "${BENCH_GATE_THRESHOLD:-300}" > /dev/null
rm -f /tmp/bench_gate.json

echo "== parallel speedup gate: plan.trials-par4 vs plan.trials-seq =="
# The persistent-pool engine must actually win at 4 jobs — but only on a
# machine that has 4 cores to run them on.  A 1- or 2-core CI runner
# time-slices the worker domains and measures scheduling, not the engine,
# so the gate is skipped there with a notice.
CORES=$(getconf _NPROCESSORS_ONLN 2> /dev/null || echo 1)
if [ "$CORES" -lt 4 ]; then
  echo "check.sh: NOTICE: only $CORES core(s) online, skipping the par-beats-seq gate (needs >= 4)"
else
  SEQ_NS=$(sed -n 's/.*"name":"plan.trials-seq","ns_per_run":\([0-9.eE+-]*\).*/\1/p' "$BENCH_JSON")
  PAR_NS=$(sed -n 's/.*"name":"plan.trials-par4","ns_per_run":\([0-9.eE+-]*\).*/\1/p' "$BENCH_JSON")
  [ -n "$SEQ_NS" ] && [ -n "$PAR_NS" ] \
    || { echo "check.sh: could not read trial kernel timings from $BENCH_JSON" >&2; exit 1; }
  awk -v seq="$SEQ_NS" -v par="$PAR_NS" 'BEGIN { exit !(par + 0 < seq + 0) }' \
    || { echo "check.sh: plan.trials-par4 ($PAR_NS ns) not faster than plan.trials-seq ($SEQ_NS ns)" >&2; exit 1; }
  echo "check.sh: par4 beats seq ($PAR_NS ns < $SEQ_NS ns)"
fi

PROFILE_JSON="${PROFILE_JSON:-/tmp/solarstorm.trace.json}"
rm -f "$PROFILE_JSON"

echo "== simulate --profile $PROFILE_JSON (SOLARSTORM_JOBS=2) =="
# 2000 trials, not 200: the trial kernel is fast enough now that a tiny
# job can drain on the calling domain before the pool helper wakes up,
# leaving no second-domain spans for this gate to find.
SOLARSTORM_JOBS=2 dune exec bin/solarstorm.exe -- simulate --trials 2000 \
  --progress --profile "$PROFILE_JSON" > /tmp/simulate_profiled.out

test -s "$PROFILE_JSON" || { echo "check.sh: $PROFILE_JSON missing or empty" >&2; exit 1; }
for needle in '"traceEvents":[' '"ph":"B"' '"ph":"E"' '"name":"exec.worker"' \
              '"name":"mc.trial"' '"tid":0' '"tid":1'; do
  grep -q -F "$needle" "$PROFILE_JSON" \
    || { echo "check.sh: $PROFILE_JSON malformed (missing $needle)" >&2; exit 1; }
done

if command -v python3 > /dev/null 2>&1; then
  python3 - "$PROFILE_JSON" <<'EOF'
import json, sys
from collections import Counter
doc = json.load(open(sys.argv[1]))
events = [e for e in doc["traceEvents"] if e.get("ph") in ("B", "E")]
per_tid = Counter(e["tid"] for e in events)
assert len(per_tid) >= 2, f"expected >= 2 domains in trace, got {sorted(per_tid)}"
assert all(n >= 1 for n in per_tid.values()), "empty per-domain event stream"
for e in events:
    assert e["pid"] == 1 and isinstance(e["ts"], float) and e["ts"] >= 0.0, e
EOF
fi

echo "== profiled/progress run output is byte-identical to plain runs =="
dune exec bin/solarstorm.exe -- simulate --trials 2000 --jobs 1 > /tmp/simulate_seq.out
dune exec bin/solarstorm.exe -- simulate --trials 2000 --jobs 4 > /tmp/simulate_par.out
cmp /tmp/simulate_seq.out /tmp/simulate_par.out \
  || { echo "check.sh: --jobs 4 changed simulate output" >&2; exit 1; }
cmp /tmp/simulate_seq.out /tmp/simulate_profiled.out \
  || { echo "check.sh: --profile/--progress changed simulate output" >&2; exit 1; }
rm -f /tmp/simulate_seq.out /tmp/simulate_par.out /tmp/simulate_profiled.out

echo "== solarstorm serve: smoke gate =="
# Boot the service on an ephemeral port, exercise every acceptance
# property over real HTTP, then prove SIGTERM drains to a clean exit 0.
SERVE_LOG=/tmp/serve_gate.log
SERVE_TRIALS=25
rm -f "$SERVE_LOG" /tmp/serve_sim1.json /tmp/serve_sim2.json /tmp/serve_cli.json /tmp/serve_metrics.txt
_build/default/bin/solarstorm.exe serve --port 0 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$SERVE_LOG" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$SERVE_LOG")
BASE="http://127.0.0.1:$SERVE_PORT"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
  || { echo "check.sh: /healthz not ok" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# The same POST twice: the repeat must be byte-identical and served from
# the result cache (hit counted, no further trials run).
SERVE_BODY="{\"trials\":$SERVE_TRIALS,\"seed\":11}"
curl -fsS -d "$SERVE_BODY" "$BASE/simulate" > /tmp/serve_sim1.json
curl -fsS -d "$SERVE_BODY" "$BASE/simulate" > /tmp/serve_sim2.json
cmp /tmp/serve_sim1.json /tmp/serve_sim2.json \
  || { echo "check.sh: repeated /simulate was not byte-identical" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

curl -fsS "$BASE/metrics" > /tmp/serve_metrics.txt
grep -q '^server_cache_hits 1$' /tmp/serve_metrics.txt \
  || { echo "check.sh: /metrics shows no cache hit for the repeated POST" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q "^plan_trials $SERVE_TRIALS\$" /tmp/serve_metrics.txt \
  || { echo "check.sh: cache hit re-ran trials (plan_trials != $SERVE_TRIALS)" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '^server_requests ' /tmp/serve_metrics.txt \
  || { echo "check.sh: /metrics missing server_requests" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# The HTTP body is byte-identical to the CLI's --json output for the
# same parameters: one shared compute + encode path.
dune exec bin/solarstorm.exe -- simulate --json --trials "$SERVE_TRIALS" --seed 11 > /tmp/serve_cli.json
cmp /tmp/serve_sim1.json /tmp/serve_cli.json \
  || { echo "check.sh: HTTP /simulate body differs from CLI --json output" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "check.sh: serve did not exit 0 on SIGTERM" >&2
  exit 1
fi
grep -q 'solarstorm serve: stopped' "$SERVE_LOG" \
  || { echo "check.sh: serve did not log a clean drain" >&2; exit 1; }
rm -f /tmp/serve_sim1.json /tmp/serve_sim2.json /tmp/serve_cli.json /tmp/serve_metrics.txt

echo "== solarstorm serve: observability gate =="
# Boot with the full observability surface on (--log, --trace-seed,
# --profile), prove the access log and the X-Trace-Id header agree, that
# the id survives into the Chrome trace, that /statusz answers, that
# loadgen reports a well-formed bench document — and that none of it
# changes a single response byte.
ACCESS_LOG=/tmp/serve_access.jsonl
SERVE_TRACE=/tmp/serve_trace.json
OBS_LOG=/tmp/serve_obs.log
rm -f "$ACCESS_LOG" "$SERVE_TRACE" "$OBS_LOG" /tmp/serve_obs_headers.txt \
  /tmp/serve_obs_sim.json /tmp/serve_obs_cli.json /tmp/loadgen_gate.json
_build/default/bin/solarstorm.exe serve --port 0 --trace-seed 42 \
  --log "$ACCESS_LOG" --profile "$SERVE_TRACE" > "$OBS_LOG" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$OBS_LOG" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: observability serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$OBS_LOG")
BASE="http://127.0.0.1:$SERVE_PORT"

# One traced request, response headers captured.
curl -fsS -D /tmp/serve_obs_headers.txt -d "$SERVE_BODY" "$BASE/simulate" > /tmp/serve_obs_sim.json
TRACE_ID=$(tr -d '\r' < /tmp/serve_obs_headers.txt | sed -n 's/^[Xx]-[Tt]race-[Ii]d: *//p')
case "$TRACE_ID" in
  [0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f]) ;;
  *) echo "check.sh: X-Trace-Id missing or not 16 hex chars: '$TRACE_ID'" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1 ;;
esac

# Logging and tracing must not change a single body byte.
dune exec bin/solarstorm.exe -- simulate --json --trials "$SERVE_TRIALS" --seed 11 > /tmp/serve_obs_cli.json
cmp /tmp/serve_obs_sim.json /tmp/serve_obs_cli.json \
  || { echo "check.sh: --log/--trace-seed changed the /simulate body" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# The access log carries the same id the client saw.
grep -q '"event":"http.access"' "$ACCESS_LOG" \
  || { echo "check.sh: $ACCESS_LOG has no http.access line" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q "\"trace\":\"$TRACE_ID\"" "$ACCESS_LOG" \
  || { echo "check.sh: access log does not carry trace $TRACE_ID" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
if command -v python3 > /dev/null 2>&1; then
  python3 - "$ACCESS_LOG" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty access log"
for line in lines:
    doc = json.loads(line)  # every line must be one valid JSON object
    assert {"ts_ns", "level", "event"} <= doc.keys(), doc
access = [d for d in map(json.loads, lines) if d["event"] == "http.access"]
assert any(d["path"] == "/simulate" and d["status"] == 200 for d in access), access
EOF
fi

# /statusz: uptime, request counts, latency quantiles, cache occupancy.
curl -fsS "$BASE/statusz" | grep -q '"status":"ok"' \
  || { echo "check.sh: /statusz not ok" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
curl -fsS "$BASE/statusz" | grep -q '"latency_ms":{"count"' \
  || { echo "check.sh: /statusz missing latency block" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# /metrics now renders the SLO quantile family next to the histogram.
curl -fsS "$BASE/metrics" | grep -q 'server_request_ms_quantile{q="0.99"}' \
  || { echo "check.sh: /metrics missing latency quantile gauges" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# loadgen smoke run: the report must be a solarstorm-bench/1 document.
_build/default/bin/solarstorm.exe loadgen --url "$BASE/healthz" \
  --connections 2 --requests 40 > /tmp/loadgen_gate.json 2> /dev/null \
  || { echo "check.sh: loadgen run failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
for needle in '"schema":"solarstorm-bench/1"' '"mode":"loadgen"' \
              '"name":"loadgen.latency-p50"' '"name":"loadgen.latency-p99"' \
              '"name":"loadgen.ns-per-request"' '"loadgen.req_per_s"' \
              '"loadgen.elapsed_s"'; do
  grep -q -F "$needle" /tmp/loadgen_gate.json \
    || { echo "check.sh: loadgen report malformed (missing $needle)" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
done
if command -v python3 > /dev/null 2>&1; then
  python3 - /tmp/loadgen_gate.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "solarstorm-bench/1" and doc["mode"] == "loadgen"
assert doc["metrics"]["loadgen.requests"] == 40, doc["metrics"]
assert doc["metrics"]["loadgen.errors"] == 0, doc["metrics"]
assert doc["metrics"]["loadgen.req_per_s"] > 0, doc["metrics"]
assert doc["metrics"]["loadgen.elapsed_s"] > 0, doc["metrics"]
names = {k["name"] for k in doc["kernels"]}
assert {"loadgen.latency-mean", "loadgen.latency-p50",
        "loadgen.latency-p95", "loadgen.latency-p99",
        "loadgen.ns-per-request"} <= names, names
EOF
fi

# Drain; the profile is written after the listener stops.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "check.sh: observability serve did not exit 0 on SIGTERM" >&2
  exit 1
fi
test -s "$SERVE_TRACE" || { echo "check.sh: $SERVE_TRACE missing or empty" >&2; exit 1; }
grep -q "\"args\":{\"trace\":\"$TRACE_ID\"}" "$SERVE_TRACE" \
  || { echo "check.sh: trace $TRACE_ID not findable in $SERVE_TRACE" >&2; exit 1; }
grep -q '"name":"server.request"' "$SERVE_TRACE" \
  || { echo "check.sh: $SERVE_TRACE has no server.request span" >&2; exit 1; }
rm -f /tmp/serve_obs_headers.txt /tmp/serve_obs_sim.json /tmp/serve_obs_cli.json /tmp/loadgen_gate.json

echo "== solarstorm serve: worker pool gate =="
# The acceptor + worker-domain pool must be invisible in the bytes: every
# analysis endpoint answers byte-identically whether one worker or four
# are running, the pool survives more client concurrency than workers,
# per-worker /statusz counters sum to the request total, and the shared
# cache counts one hit per concurrent repeated POST — exactly.
W1_LOG=/tmp/serve_w1.log
W4_LOG=/tmp/serve_w4.log
rm -f "$W1_LOG" "$W4_LOG" /tmp/w1_*.json /tmp/w4_*.json /tmp/conc_*.json \
  /tmp/pool_warm.json /tmp/pool_statusz.json /tmp/loadgen_pool.json /tmp/pool_metrics.txt

_build/default/bin/solarstorm.exe serve --port 0 --workers 1 > "$W1_LOG" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$W1_LOG" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: --workers 1 serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$W1_LOG")
BASE="http://127.0.0.1:$SERVE_PORT"
curl -fsS -d "$SERVE_BODY" "$BASE/simulate" > /tmp/w1_sim.json
curl -fsS -d '{"event":"carrington","trials":25}' "$BASE/scenario" > /tmp/w1_scn.json
curl -fsS -d '{"trials":25}' "$BASE/countries" > /tmp/w1_cty.json
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "check.sh: --workers 1 serve did not exit 0" >&2; exit 1; }

_build/default/bin/solarstorm.exe serve --port 0 --workers 4 > "$W4_LOG" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$W4_LOG" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: --workers 4 serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
grep -q 'listening on .*(4 workers)' "$W4_LOG" \
  || { echo "check.sh: --workers 4 serve did not report its pool size" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$W4_LOG")
BASE="http://127.0.0.1:$SERVE_PORT"

curl -fsS -d "$SERVE_BODY" "$BASE/simulate" > /tmp/w4_sim.json
curl -fsS -d '{"event":"carrington","trials":25}' "$BASE/scenario" > /tmp/w4_scn.json
curl -fsS -d '{"trials":25}' "$BASE/countries" > /tmp/w4_cty.json
for ep in sim scn cty; do
  cmp "/tmp/w1_$ep.json" "/tmp/w4_$ep.json" \
    || { echo "check.sh: --workers 4 changed the $ep response bytes" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
done

# Concurrent repeated POSTs of one fresh body: the warm-up is the only
# miss, every concurrent repeat is one counted hit with the warm bytes.
CONC_BODY='{"trials":7,"seed":3}'
curl -fsS -d "$CONC_BODY" "$BASE/simulate" > /tmp/pool_warm.json
CONC_PIDS=""
for i in 1 2 3 4 5 6 7 8; do
  curl -fsS -d "$CONC_BODY" "$BASE/simulate" > "/tmp/conc_$i.json" &
  CONC_PIDS="$CONC_PIDS $!"
done
for p in $CONC_PIDS; do
  wait "$p" || { echo "check.sh: a concurrent POST failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
done
for i in 1 2 3 4 5 6 7 8; do
  cmp /tmp/pool_warm.json "/tmp/conc_$i.json" \
    || { echo "check.sh: concurrent POST $i returned different bytes" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
done
curl -fsS "$BASE/metrics" > /tmp/pool_metrics.txt
grep -q '^server_cache_hits 8$' /tmp/pool_metrics.txt \
  || { echo "check.sh: expected exactly 8 cache hits under concurrency, got: $(grep '^server_cache_hits' /tmp/pool_metrics.txt)" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# More client concurrency than workers: 8 pipelining connections against
# a 4-worker pool must complete every request without an error.
_build/default/bin/solarstorm.exe loadgen --url "$BASE/healthz" \
  --connections 8 --requests 80 > /tmp/loadgen_pool.json 2> /dev/null \
  || { echo "check.sh: loadgen vs worker pool failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
if command -v python3 > /dev/null 2>&1; then
  python3 - /tmp/loadgen_pool.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["metrics"]["loadgen.requests"] == 80, doc["metrics"]
assert doc["metrics"]["loadgen.errors"] == 0, doc["metrics"]
EOF
else
  grep -q '"loadgen.requests":80' /tmp/loadgen_pool.json \
    || { echo "check.sh: loadgen vs worker pool dropped requests" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
fi

# /statusz: one row per worker, and their request counts sum to the
# process-wide total (both counters are bumped at the same instruction).
curl -fsS "$BASE/statusz" > /tmp/pool_statusz.json
if command -v python3 > /dev/null 2>&1; then
  python3 - /tmp/pool_statusz.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["workers"]
assert len(rows) == 4, f"expected 4 worker rows, got {rows}"
assert sum(r["requests"] for r in rows) == doc["requests"]["total"], doc
assert all(isinstance(r["busy_ms"], (int, float)) for r in rows), rows
EOF
else
  grep -q '"workers":\[{' /tmp/pool_statusz.json \
    || { echo "check.sh: /statusz has no worker rows" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
fi

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "check.sh: --workers 4 serve did not exit 0 on SIGTERM" >&2; exit 1; }
grep -q 'solarstorm serve: stopped' "$W4_LOG" \
  || { echo "check.sh: --workers 4 serve did not log a clean drain" >&2; exit 1; }
rm -f /tmp/w1_*.json /tmp/w4_*.json /tmp/conc_*.json /tmp/pool_warm.json \
  /tmp/pool_statusz.json /tmp/loadgen_pool.json /tmp/pool_metrics.txt "$W1_LOG" "$W4_LOG"

echo "== solarstorm sweep: streaming grid gate =="
# The 64-cell bench grid (4 models x 4 itu scales x 4 duplicate trial
# values) collapses to exactly 4 compiled plans.  The gate proves the
# whole sweep contract over real interfaces: CLI output is byte-identical
# for any --jobs count, the de-chunked POST /sweep body equals the CLI
# bytes, the response really is chunked JSONL, the dedup counters are
# exact on /metrics, and loadgen can drive the streaming endpoint from a
# --body-file grid.
SWEEP_LOG=/tmp/serve_sweep.log
SWEEP_GRID=/tmp/sweep_grid.json
rm -f "$SWEEP_LOG" "$SWEEP_GRID" /tmp/sweep_j1.jsonl /tmp/sweep_j4.jsonl \
  /tmp/sweep_http.jsonl /tmp/sweep_headers.txt /tmp/sweep_metrics.txt /tmp/loadgen_sweep.json
printf '%s' '{"model":[0.005,0.01,0.02,"s1"],"itu_scale":[0.1,0.2,0.3,0.4],"trials":[25,25,25,25]}' > "$SWEEP_GRID"
SWEEP_AXES='--axis model=0.005,0.01,0.02,s1 --axis itu_scale=0.1,0.2,0.3,0.4 --axis trials=25,25,25,25'
dune exec bin/solarstorm.exe -- sweep $SWEEP_AXES --jobs 1 > /tmp/sweep_j1.jsonl 2> /dev/null
dune exec bin/solarstorm.exe -- sweep $SWEEP_AXES --jobs 4 > /tmp/sweep_j4.jsonl 2> /dev/null
cmp /tmp/sweep_j1.jsonl /tmp/sweep_j4.jsonl \
  || { echo "check.sh: sweep --jobs 4 changed the streamed rows" >&2; exit 1; }
[ "$(wc -l < /tmp/sweep_j1.jsonl)" = "64" ] \
  || { echo "check.sh: sweep CLI streamed $(wc -l < /tmp/sweep_j1.jsonl) rows, want 64" >&2; exit 1; }

_build/default/bin/solarstorm.exe serve --port 0 > "$SWEEP_LOG" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$SWEEP_LOG" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: sweep serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$SWEEP_LOG")
BASE="http://127.0.0.1:$SERVE_PORT"

# Exactly one POST of the grid, streamed (-N disables curl buffering).
curl -fsSN -D /tmp/sweep_headers.txt --data-binary "@$SWEEP_GRID" "$BASE/sweep" > /tmp/sweep_http.jsonl \
  || { echo "check.sh: POST /sweep failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -qi '^transfer-encoding: *chunked' /tmp/sweep_headers.txt \
  || { echo "check.sh: /sweep response is not chunked" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -qi '^content-type: *application/x-ndjson' /tmp/sweep_headers.txt \
  || { echo "check.sh: /sweep response is not ndjson" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
cmp /tmp/sweep_j1.jsonl /tmp/sweep_http.jsonl \
  || { echo "check.sh: POST /sweep body differs from sweep CLI output" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# Dedup is observable: 64 cells, 64 rows, exactly 4 compiled plans.
curl -fsS "$BASE/metrics" > /tmp/sweep_metrics.txt
grep -q '^server_sweep_cells 64$' /tmp/sweep_metrics.txt \
  || { echo "check.sh: server_sweep_cells != 64: $(grep '^server_sweep_cells' /tmp/sweep_metrics.txt)" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '^server_sweep_rows_streamed 64$' /tmp/sweep_metrics.txt \
  || { echo "check.sh: server_sweep_rows_streamed != 64" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '^server_sweep_plans_compiled 4$' /tmp/sweep_metrics.txt \
  || { echo "check.sh: server_sweep_plans_compiled != 4: $(grep '^server_sweep_plans_compiled' /tmp/sweep_metrics.txt)" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
curl -fsS "$BASE/statusz" | grep -q '"sweep":{"cells":64.0' \
  || { echo "check.sh: /statusz missing the sweep block" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# Every streamed line parses as one JSON object (when python3 is around).
if command -v python3 > /dev/null 2>&1; then
  python3 - /tmp/sweep_http.jsonl <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 64, f"expected 64 JSONL rows, got {len(lines)}"
for i, line in enumerate(lines):
    doc = json.loads(line)
    assert doc["cell"] == i, (i, doc)
    assert {"network", "model", "spacing_km", "seed", "trials",
            "cables_failed_pct", "nodes_unreachable_pct"} <= doc.keys(), doc
EOF
fi

# A malformed grid is an ordinary fixed 400, not a truncated stream.
BAD_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -d '{"bogus":[1]}' "$BASE/sweep")
[ "$BAD_STATUS" = "400" ] \
  || { echo "check.sh: bad grid answered $BAD_STATUS, want 400" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# loadgen drives the streaming endpoint from --body-file and reports
# first-row latency and chunk counts.
_build/default/bin/solarstorm.exe loadgen --url "$BASE/sweep" \
  --body-file "$SWEEP_GRID" --connections 2 --requests 8 > /tmp/loadgen_sweep.json 2> /dev/null \
  || { echo "check.sh: loadgen vs /sweep failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
for needle in '"name":"loadgen.ttfb-p50"' '"name":"loadgen.ttfb-p95"' '"loadgen.chunks":'; do
  grep -q -F "$needle" /tmp/loadgen_sweep.json \
    || { echo "check.sh: loadgen sweep report missing $needle" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
done

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "check.sh: sweep serve did not exit 0 on SIGTERM" >&2; exit 1; }

# The grid engine itself must win at 4 jobs on a machine with the cores
# to run them (same skip rule as the trial-engine gate above).
if [ "$CORES" -lt 4 ]; then
  echo "check.sh: NOTICE: only $CORES core(s) online, skipping the sweep par-beats-seq gate (needs >= 4)"
else
  SEQ_NS=$(sed -n 's/.*"name":"sweep.grid-seq","ns_per_run":\([0-9.eE+-]*\).*/\1/p' "$BENCH_JSON")
  PAR_NS=$(sed -n 's/.*"name":"sweep.grid-par4","ns_per_run":\([0-9.eE+-]*\).*/\1/p' "$BENCH_JSON")
  [ -n "$SEQ_NS" ] && [ -n "$PAR_NS" ] \
    || { echo "check.sh: could not read sweep kernel timings from $BENCH_JSON" >&2; exit 1; }
  awk -v seq="$SEQ_NS" -v par="$PAR_NS" 'BEGIN { exit !(par + 0 < seq + 0) }' \
    || { echo "check.sh: sweep.grid-par4 ($PAR_NS ns) not faster than sweep.grid-seq ($SEQ_NS ns)" >&2; exit 1; }
  echo "check.sh: sweep par4 beats seq ($PAR_NS ns < $SEQ_NS ns)"
fi
rm -f /tmp/sweep_j1.jsonl /tmp/sweep_j4.jsonl /tmp/sweep_http.jsonl \
  /tmp/sweep_headers.txt /tmp/sweep_metrics.txt /tmp/loadgen_sweep.json "$SWEEP_GRID" "$SWEEP_LOG"

echo "== solarstorm serve: self-monitoring gate =="
# Boot with a breachable throughput SLO ("stay under 40 req/s") and a
# fast sampler, drive sustained load, and prove the full loop: the alert
# fires into the JSONL log and /alertz, /varz series move between
# scrapes, /dashboard renders sparklines, the alert resolves once the
# load stops, and `solarstorm top` can scrape a frame.
MON_LOG=/tmp/serve_mon.jsonl
MON_OUT=/tmp/serve_mon.log
rm -f "$MON_LOG" "$MON_OUT" /tmp/varz1.json /tmp/varz2.json /tmp/dashboard.html \
  /tmp/alertz.json /tmp/loadgen_mon.json /tmp/top_frame.txt
_build/default/bin/solarstorm.exe serve --port 0 --workers 4 \
  --sampler-step 0.2 --slo 'server.requests:rate<40:2s' \
  --log "$MON_LOG" > "$MON_OUT" 2>&1 &
SERVE_PID=$!
i=0
until grep -q 'listening on' "$MON_OUT" 2> /dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "check.sh: self-monitoring serve never became ready" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
  sleep 0.1
done
SERVE_PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$MON_OUT")
BASE="http://127.0.0.1:$SERVE_PORT"

# First /varz scrape before any load.
curl -fsS "$BASE/varz?window=60s" > /tmp/varz1.json \
  || { echo "check.sh: /varz failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '"series":{' /tmp/varz1.json \
  || { echo "check.sh: /varz has no series object" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# A malformed window must be a 400, not a 200 or a crash.
BAD_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/varz?window=banana")
[ "$BAD_STATUS" = "400" ] \
  || { echo "check.sh: /varz?window=banana answered $BAD_STATUS, want 400" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# Sustained load in the background (well above 40 req/s on loopback);
# --warmup exercises the warmup-exclusion path end to end.
_build/default/bin/solarstorm.exe loadgen --url "$BASE/healthz" \
  --connections 4 --requests 60000 --warmup 100 > /tmp/loadgen_mon.json 2> /dev/null &
LOADGEN_PID=$!

# The alert must fire while the load runs: watch /alertz.
FIRED=0
i=0
while [ "$i" -le 100 ]; do
  i=$((i + 1))
  curl -fsS "$BASE/alertz" > /tmp/alertz.json 2> /dev/null || true
  if grep -q '"state":"firing"' /tmp/alertz.json; then FIRED=1; break; fi
  sleep 0.2
done
[ "$FIRED" = "1" ] \
  || { echo "check.sh: SLO breach never fired in /alertz" >&2; kill "$SERVE_PID" "$LOADGEN_PID" 2> /dev/null; exit 1; }

# A second /varz scrape under load: the ring must have moved.
curl -fsS "$BASE/varz?window=60s" > /tmp/varz2.json
if cmp -s /tmp/varz1.json /tmp/varz2.json; then
  echo "check.sh: /varz did not change between scrapes under load" >&2
  kill "$SERVE_PID" "$LOADGEN_PID" 2> /dev/null
  exit 1
fi
if command -v python3 > /dev/null 2>&1; then
  python3 - /tmp/varz2.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["window_s"] == 60.0, doc["window_s"]
assert doc["samples"] >= 1, doc["samples"]
reqs = doc["series"]["server.requests"]
assert reqs["kind"] == "counter" and reqs["rate_per_s"] > 0, reqs
assert reqs["points"], "no points in server.requests series"
lat = doc["series"]["server.request.ms"]
assert lat["kind"] == "histogram" and "p99" in lat, lat
EOF
fi

# /dashboard: one self-contained HTML page with inline SVG sparklines.
curl -fsS "$BASE/dashboard" > /tmp/dashboard.html \
  || { echo "check.sh: /dashboard failed" >&2; kill "$SERVE_PID" "$LOADGEN_PID" 2> /dev/null; exit 1; }
grep -q '<svg' /tmp/dashboard.html \
  || { echo "check.sh: /dashboard has no sparkline svg" >&2; kill "$SERVE_PID" "$LOADGEN_PID" 2> /dev/null; exit 1; }
grep -q 'server.requests' /tmp/dashboard.html \
  || { echo "check.sh: /dashboard names no server metric" >&2; kill "$SERVE_PID" "$LOADGEN_PID" 2> /dev/null; exit 1; }

wait "$LOADGEN_PID" || { echo "check.sh: background loadgen failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '"loadgen.warmup":400' /tmp/loadgen_mon.json \
  || { echo "check.sh: loadgen report does not carry the warmup count" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# The firing transition also landed in the structured log.
grep -q '"event":"alert.firing"' "$MON_LOG" \
  || { echo "check.sh: $MON_LOG has no alert.firing line" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# Load is gone: slow polling (~2 req/s) sits far under the objective, so
# the short burn-rate window recovers and the alert resolves.
RESOLVED=0
i=0
while [ "$i" -le 60 ]; do
  i=$((i + 1))
  sleep 0.5
  curl -fsS "$BASE/alertz" > /tmp/alertz.json 2> /dev/null || true
  if grep -q '"state":"ok"' /tmp/alertz.json && grep -q '"firing":0' /tmp/alertz.json; then
    RESOLVED=1
    break
  fi
done
[ "$RESOLVED" = "1" ] \
  || { echo "check.sh: SLO alert never resolved after the load stopped" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q '"event":"alert.resolved"' "$MON_LOG" \
  || { echo "check.sh: $MON_LOG has no alert.resolved line" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

# `solarstorm top` scrapes one frame off the live server and exits 0.
_build/default/bin/solarstorm.exe top --port "$SERVE_PORT" --count 1 \
  --interval 0.1 > /tmp/top_frame.txt \
  || { echo "check.sh: solarstorm top failed" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q 'solarstorm top' /tmp/top_frame.txt \
  || { echo "check.sh: top frame missing header" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }
grep -q 'latency' /tmp/top_frame.txt \
  || { echo "check.sh: top frame missing latency row" >&2; kill "$SERVE_PID" 2> /dev/null; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "check.sh: self-monitoring serve did not exit 0 on SIGTERM" >&2; exit 1; }
rm -f /tmp/varz1.json /tmp/varz2.json /tmp/dashboard.html /tmp/alertz.json \
  /tmp/loadgen_mon.json /tmp/top_frame.txt "$MON_LOG" "$MON_OUT"

echo "check.sh: all green ($BENCH_JSON, $PROFILE_JSON, serve ok, observability ok, worker pool ok, sweep ok, self-monitoring ok)"
